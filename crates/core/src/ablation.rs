//! Ablation: the paper's §4.1 algorithm, taken literally.
//!
//! DESIGN.md (deviation 2) documents why the production
//! [`crate::compute_applicability`] retracts the whole `Applicable`
//! suffix of the current top-level call when an optimistic assumption
//! fails, instead of only the recorded `dependencyList`. This module
//! keeps the *literal* transcription — retract exactly the dependency
//! list, nothing else — so the difference is measurable rather than
//! anecdotal: experiment DEV in the reproduction harness runs both
//! against the greatest-fixpoint oracle over random schemas and reports
//! the literal algorithm's misclassification rate.
//!
//! Do not use this for real derivations; it exists to be wrong in
//! public.

use std::collections::{BTreeSet, HashMap, HashSet};
use td_model::dataflow::CallSite;
use td_model::{AttrId, CallArg, MethodId, Schema, TypeId};

use crate::applicability::call_candidates;
use crate::error::{CoreError, Result};

/// Computes the applicable set with the paper's literal dependency-list
/// retraction. Returns the applicable methods as a sorted set.
pub fn compute_applicability_literal(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
) -> Result<BTreeSet<MethodId>> {
    let universe = schema.methods_applicable_to_type(source);
    let mut ctx = LiteralCtx {
        schema,
        source,
        projection,
        applicable: Vec::new(),
        applicable_set: HashSet::new(),
        not_applicable_set: HashSet::new(),
        stack: Vec::new(),
        sites_cache: HashMap::new(),
        scratch: Vec::new(),
    };
    let mut passes = 0usize;
    loop {
        passes += 1;
        if passes > universe.len() + 2 {
            return Err(CoreError::NonConvergence { iterations: passes });
        }
        for &m in &universe {
            if !ctx.is_classified(m) {
                ctx.test(m)?;
            }
        }
        if universe.iter().all(|&m| ctx.is_classified(m)) {
            return Ok(ctx.applicable_set.into_iter().collect());
        }
    }
}

struct LiteralCtx<'a> {
    schema: &'a Schema,
    source: TypeId,
    projection: &'a BTreeSet<AttrId>,
    applicable: Vec<MethodId>,
    applicable_set: HashSet<MethodId>,
    not_applicable_set: HashSet<MethodId>,
    stack: Vec<(MethodId, Vec<MethodId>)>,
    sites_cache: HashMap<MethodId, Vec<CallSite>>,
    scratch: Vec<CallArg>,
}

impl LiteralCtx<'_> {
    fn is_classified(&self, m: MethodId) -> bool {
        self.applicable_set.contains(&m) || self.not_applicable_set.contains(&m)
    }

    fn relevant_sites(&mut self, m: MethodId) -> Result<Vec<CallSite>> {
        if !self.sites_cache.contains_key(&m) {
            let sites: Vec<CallSite> = self
                .schema
                .call_sites(m, self.source)?
                .into_iter()
                .filter(|s| !s.source_positions.is_empty())
                .collect();
            self.sites_cache.insert(m, sites);
        }
        Ok(self.sites_cache[&m].clone())
    }

    fn test(&mut self, m: MethodId) -> Result<bool> {
        if self.applicable_set.contains(&m) {
            return Ok(true);
        }
        if self.not_applicable_set.contains(&m) {
            return Ok(false);
        }
        let method = self.schema.method(m);
        if let Some(attr) = method.kind.accessed_attr() {
            if self.projection.contains(&attr) {
                self.applicable_set.insert(m);
                self.applicable.push(m);
                return Ok(true);
            }
            self.not_applicable_set.insert(m);
            return Ok(false);
        }
        if let Some(pos) = self.stack.iter().position(|(x, _)| *x == m) {
            let above: Vec<MethodId> = self.stack[pos + 1..].iter().map(|(x, _)| *x).collect();
            self.stack[pos].1.extend(above);
            return Ok(true);
        }
        self.stack.push((m, Vec::new()));
        for site in self.relevant_sites(m)? {
            let (candidates, _) =
                call_candidates(self.schema, self.source, &site, &mut self.scratch);
            let mut satisfied = false;
            for c in candidates {
                if self.test(c)? {
                    satisfied = true;
                    break;
                }
            }
            if !satisfied {
                let (_, deps) = self.stack.pop().expect("frame pushed above");
                // THE LITERAL RULE: remove exactly the dependency list.
                for d in deps {
                    if self.applicable_set.remove(&d) {
                        self.applicable.retain(|&x| x != d);
                    }
                }
                self.not_applicable_set.insert(m);
                return Ok(false);
            }
        }
        self.applicable_set.insert(m);
        self.applicable.push(m);
        self.stack.pop();
        Ok(true)
    }
}

/// Outcome of one literal-vs-oracle comparison sweep.
#[derive(Debug, Clone, Default)]
pub struct AblationOutcome {
    /// Workloads examined.
    pub runs: usize,
    /// Workloads where the literal algorithm's result differs from the
    /// greatest fixpoint.
    pub literal_mismatches: usize,
    /// Workloads where the production algorithm differs (must stay 0).
    pub repaired_mismatches: usize,
}

/// Runs the literal algorithm, the production algorithm and the fixpoint
/// oracle over one workload, recording disagreements into `outcome`.
pub fn compare_on(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    outcome: &mut AblationOutcome,
) -> Result<()> {
    let oracle = crate::oracle::applicability_fixpoint(schema, source, projection)?;
    let literal = compute_applicability_literal(schema, source, projection)?;
    let repaired: BTreeSet<MethodId> =
        crate::applicability::compute_applicability(schema, source, projection, false)?
            .applicable
            .into_iter()
            .collect();
    outcome.runs += 1;
    outcome.literal_mismatches += usize::from(literal != oracle);
    outcome.repaired_mismatches += usize::from(repaired != oracle);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_workload::figures;

    #[test]
    fn literal_matches_on_the_paper_example() {
        // The paper's own example is within the literal algorithm's power
        // (the dependency list is exact there).
        let s = figures::fig3();
        let a = s.type_id("A").unwrap();
        let proj: BTreeSet<AttrId> = figures::FIG4_PROJECTION
            .iter()
            .map(|n| s.attr_id(n).unwrap())
            .collect();
        let literal = compute_applicability_literal(&s, a, &proj).unwrap();
        let oracle = crate::oracle::applicability_fixpoint(&s, a, &proj).unwrap();
        assert_eq!(literal, oracle);
    }

    #[test]
    fn literal_misclassifies_the_stranded_dependent() {
        // The counterexample family from DESIGN.md deviation 2, distilled.
        //
        //   f2_m(T)  = { f12($0); get_dead($0) }
        //   f12_m(T) = { f5($0); f2($0) }
        //   f5_m(T)  = { f12($0) }
        //
        // Testing f2_m pushes [f2_m, f12_m, f5_m]; f5_m hits the cycle on
        // f12_m, so f5_m lands in *f12_m's* dependency list and is then
        // classified applicable. f12_m's own frame SUCCEEDS (optimism on
        // f2_m), discarding that list. When f2_m later fails, its list
        // holds only f12_m — retracting it strands f5_m, whose support
        // (f12_m) is re-checked to not-applicable while f5_m stays
        // "applicable" forever. The fixpoint (and the repaired algorithm)
        // kill all three.
        use td_model::{BodyBuilder, Expr, MethodKind, Specializer, ValueType};
        let mut s = td_model::Schema::new();
        let t = s.add_type("T", &[]).unwrap();
        let dead = s.add_attr("dead", ValueType::INT, t).unwrap();
        let (get_dead, _) = s.add_reader(dead, t).unwrap();
        let f2 = s.add_gf("f2", 1, None).unwrap();
        let f12 = s.add_gf("f12", 1, None).unwrap();
        let f5 = s.add_gf("f5", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f12, vec![Expr::Param(0)]);
        bb.call(get_dead, vec![Expr::Param(0)]);
        s.add_method(
            f2,
            "f2_m",
            vec![Specializer::Type(t)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f5, vec![Expr::Param(0)]);
        bb.call(f2, vec![Expr::Param(0)]);
        s.add_method(
            f12,
            "f12_m",
            vec![Specializer::Type(t)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f12, vec![Expr::Param(0)]);
        let f5_m = s
            .add_method(
                f5,
                "f5_m",
                vec![Specializer::Type(t)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();

        let proj = BTreeSet::new(); // nothing projected: everything must die
        let oracle = crate::oracle::applicability_fixpoint(&s, t, &proj).unwrap();
        assert!(oracle.is_empty(), "fixpoint kills the whole cycle");
        let repaired: BTreeSet<MethodId> =
            crate::applicability::compute_applicability(&s, t, &proj, false)
                .unwrap()
                .applicable
                .into_iter()
                .collect();
        assert_eq!(repaired, oracle, "production algorithm matches the oracle");
        let literal = compute_applicability_literal(&s, t, &proj).unwrap();
        assert_eq!(
            literal,
            [f5_m].into_iter().collect::<BTreeSet<_>>(),
            "the literal dependency-list rule strands f5_m \
             (this is the documented deviation-2 counterexample)"
        );
    }

    #[test]
    fn sweep_counts_mismatches() {
        use td_workload::{deepest_type, random_projection, random_schema, GenParams};
        let mut outcome = AblationOutcome::default();
        for seed in 0..40 {
            let schema = random_schema(&GenParams {
                seed,
                n_types: 10,
                n_gfs: 8,
                calls_per_body: 4,
                ..GenParams::default()
            });
            let source = deepest_type(&schema);
            let projection = random_projection(&schema, source, 0.3, seed ^ 0x55);
            compare_on(&schema, source, &projection, &mut outcome).unwrap();
        }
        assert_eq!(outcome.runs, 40);
        assert_eq!(
            outcome.repaired_mismatches, 0,
            "production algorithm must always match the oracle"
        );
        // The literal rule's mismatch count is whatever it is — the point
        // of the ablation is to report it, not to pin it.
    }
}
