//! `Augment` — extending the surrogate lattice for method-body typing
//! (§6.4).
//!
//! Rewriting an applicable method's signature onto surrogates can break
//! its body: in the paper's example, `z1(c: C) = { g: G; g ← c; … }`
//! becomes `z1(c: Ĉ)`, and the assignment `g ← c` is only type-correct if
//! a surrogate `Ĝ` with `Ĉ ≤ Ĝ` exists. `Augment` walks the original
//! hierarchy upward from the projection source and spins off (empty-state)
//! surrogates for the supertypes needed so that the surrogate lattice
//! mirrors the original subtype relationships along every path to a type
//! in `Z` (the types that transitively receive values of factored types
//! but got no surrogate from `FactorState`).

use std::collections::BTreeSet;
use td_model::{Schema, SuperLink, TypeId};

use crate::error::{CoreError, Result};
use crate::surrogates::{SurrogateKind, SurrogateRegistry};

/// Runs `Augment(source, Z)`. Returns the `(source, surrogate)` pairs the
/// pass created, in creation order.
pub fn augment(
    schema: &mut Schema,
    registry: &mut SurrogateRegistry,
    source: TypeId,
    z: &BTreeSet<TypeId>,
) -> Result<Vec<(TypeId, TypeId)>> {
    let mut created = Vec::new();
    let mut visited = vec![false; schema.n_types()];
    augment_rec(schema, registry, source, z, &mut created, &mut visited)?;
    Ok(created)
}

fn augment_rec(
    schema: &mut Schema,
    registry: &mut SurrogateRegistry,
    t: TypeId,
    z: &BTreeSet<TypeId>,
    created: &mut Vec<(TypeId, TypeId)>,
    visited: &mut Vec<bool>,
) -> Result<()> {
    // `Augment(S, Z)` depends only on S; a diamond would otherwise repeat
    // identical work.
    if visited[t.index()] {
        return Ok(());
    }
    visited[t.index()] = true;

    // "if T has a supertype that is a subtype of one of the types in Z"
    let relevant = schema
        .ancestors(t)
        .into_iter()
        .any(|u| z.iter().any(|&zt| schema.is_subtype(u, zt)));
    if !relevant {
        return Ok(());
    }

    // T's own surrogate must exist: the initial call starts at the
    // projection source (whose surrogate is the derived type) and every
    // recursive call creates the child's surrogate first.
    let t_hat = registry
        .surrogate(t)
        .ok_or(CoreError::MissingSurrogate(t))?;

    // "for all direct supertypes of T except T̂ in order of precedence"
    let supers: Vec<SuperLink> = schema
        .type_(t)
        .supers()
        .iter()
        .copied()
        .filter(|l| registry.surrogate(t) != Some(l.target))
        .collect();
    for link in supers {
        let s = link.target;
        // "if Ŝ does not exist then create Ŝ; make S a subtype of Ŝ with
        //  highest precedence"
        let (s_hat, fresh) = registry.get_or_create(schema, s, SurrogateKind::Augment)?;
        if fresh {
            schema.add_super_highest(s, s_hat)?;
            created.push((s, s_hat));
        }
        // "if T̂ is not already a subtype of Ŝ then make T̂ a subtype of Ŝ
        //  with precedence p"
        if !schema.is_subtype(t_hat, s_hat) {
            schema.add_super_with_prec(t_hat, s_hat, link.prec)?;
        }
        augment_rec(schema, registry, s, z, created, visited)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor_state::{factor_state, FactorStateOutcome};
    use td_model::{AttrId, ValueType};

    /// B <= A <- chain with attribute at A; projection creates ^B and ^A;
    /// a Z-type G above A must be augmented.
    #[test]
    fn augment_creates_missing_supertype_surrogates() {
        let mut s = Schema::new();
        let g = s.add_type("G", &[]).unwrap();
        let a = s.add_type("A", &[g]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        let derived = factor_state(&mut s, &mut reg, &proj, b, &mut out).unwrap();
        assert!(reg.surrogate(g).is_none()); // FactorState skipped G

        let z: BTreeSet<TypeId> = [g].into_iter().collect();
        let created = augment(&mut s, &mut reg, b, &z).unwrap();
        assert_eq!(created.len(), 1);
        let g_hat = reg.surrogate(g).unwrap();
        assert_eq!(created[0], (g, g_hat));
        // G <=(highest) ^G; ^A <= ^G mirroring A <= G; derived <= ^G.
        assert_eq!(s.type_(g).super_ids().next(), Some(g_hat));
        let a_hat = reg.surrogate(a).unwrap();
        assert!(s.is_subtype(a_hat, g_hat));
        assert!(s.is_subtype(derived, g_hat));
        s.validate().unwrap();
    }

    #[test]
    fn augment_noop_when_z_unreachable() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let unrelated = s.add_type("U", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        factor_state(&mut s, &mut reg, &proj, b, &mut out).unwrap();
        let n_before = reg.len();
        let z: BTreeSet<TypeId> = [unrelated].into_iter().collect();
        let created = augment(&mut s, &mut reg, b, &z).unwrap();
        assert!(created.is_empty());
        assert_eq!(reg.len(), n_before);
    }

    #[test]
    fn augment_with_empty_z_is_noop() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        factor_state(&mut s, &mut reg, &proj, b, &mut out).unwrap();
        let created = augment(&mut s, &mut reg, b, &BTreeSet::new()).unwrap();
        assert!(created.is_empty());
    }

    #[test]
    fn existing_surrogate_edges_not_duplicated() {
        // Z reachable through a type whose surrogate already exists with
        // the subtype edge in place: augment must not add a second edge.
        let mut s = Schema::new();
        let g = s.add_type("G", &[]).unwrap();
        let a = s.add_type("A", &[g]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let gx = s.add_attr("gx", ValueType::INT, g).unwrap();
        let proj: BTreeSet<AttrId> = [x, gx].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        factor_state(&mut s, &mut reg, &proj, b, &mut out).unwrap();
        // ^G already exists from FactorState (gx is projected).
        assert!(reg.surrogate(g).is_some());
        let z: BTreeSet<TypeId> = [g].into_iter().collect();
        let created = augment(&mut s, &mut reg, b, &z).unwrap();
        assert!(created.is_empty());
        s.validate().unwrap();
    }
}
