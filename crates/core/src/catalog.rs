//! The view catalog: named, managed derivations over one schema.
//!
//! The paper treats a view as "simply added to the list of existing
//! relations" (§1). This module is that list for derived types: views
//! are created and dropped *by name*, stacking is tracked (a view whose
//! source is another view depends on it), and drops are refused while
//! dependents exist — the discipline `unproject` requires, enforced
//! rather than documented.

use std::collections::BTreeSet;
use td_model::{AttrId, Schema, TypeId};

use crate::error::{CoreError, Result};
use crate::minimize::minimize_surrogates;
use crate::projection::{project, Derivation, ProjectionOptions};
use crate::unproject::unproject;

/// One managed view.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The view's catalog name (unique).
    pub name: String,
    /// The full derivation record.
    pub derivation: Derivation,
    /// Catalog name of the view this one is stacked on, if its source is
    /// itself a managed view.
    pub parent: Option<String>,
}

/// A registry of named projection views over a schema.
///
/// The catalog does not own the schema (the schema usually lives inside a
/// `td_store::Database`); every operation takes `&mut Schema` and the
/// caller must pass the same schema each time.
#[derive(Debug, Clone, Default)]
pub struct ViewCatalog {
    entries: Vec<CatalogEntry>,
}

impl ViewCatalog {
    /// Creates an empty catalog.
    pub fn new() -> ViewCatalog {
        ViewCatalog::default()
    }

    /// Creates a view named `name` as `Π_projection(source)`.
    pub fn create(
        &mut self,
        schema: &mut Schema,
        name: &str,
        source: TypeId,
        projection: &BTreeSet<AttrId>,
        opts: &ProjectionOptions,
    ) -> Result<&CatalogEntry> {
        if self.entry(name).is_some() {
            return Err(CoreError::Model(td_model::ModelError::Invalid(format!(
                "a view named `{name}` already exists"
            ))));
        }
        let parent = self
            .entries
            .iter()
            .find(|e| e.derivation.derived == source)
            .map(|e| e.name.clone());
        let derivation = project(schema, source, projection, opts)?;
        self.entries.push(CatalogEntry {
            name: name.to_string(),
            derivation,
            parent,
        });
        Ok(self.entries.last().expect("just pushed"))
    }

    /// Looks a view up by name.
    pub fn entry(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The derived type of the named view.
    pub fn view_type(&self, name: &str) -> Option<TypeId> {
        self.entry(name).map(|e| e.derivation.derived)
    }

    /// Names of views stacked directly on `name`.
    pub fn dependents(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.parent.as_deref() == Some(name))
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Drops the named view, restoring the schema state it introduced.
    /// Refused while dependent (stacked) views exist.
    pub fn drop_view(&mut self, schema: &mut Schema, name: &str) -> Result<()> {
        let Some(pos) = self.entries.iter().position(|e| e.name == name) else {
            return Err(CoreError::Model(td_model::ModelError::Invalid(format!(
                "no view named `{name}`"
            ))));
        };
        let dependents = self.dependents(name);
        if !dependents.is_empty() {
            return Err(CoreError::Model(td_model::ModelError::Invalid(format!(
                "cannot drop `{name}`: dependent views exist ({})",
                dependents.join(", ")
            ))));
        }
        unproject(schema, &self.entries[pos].derivation)?;
        self.entries.remove(pos);
        Ok(())
    }

    /// Drops every view, dependents first. Leaves the schema as it was
    /// before the first creation.
    pub fn drop_all(&mut self, schema: &mut Schema) -> Result<()> {
        // Repeatedly drop leaves (views with no dependents).
        while !self.entries.is_empty() {
            let leaf = self
                .entries
                .iter()
                .find(|e| self.dependents(&e.name).is_empty())
                .map(|e| e.name.clone())
                .ok_or_else(|| {
                    CoreError::Model(td_model::ModelError::Invalid(
                        "dependency cycle among views".into(),
                    ))
                })?;
            self.drop_view(schema, &leaf)?;
        }
        Ok(())
    }

    /// Runs surrogate minimization, protecting every managed view type.
    pub fn minimize(&self, schema: &mut Schema) -> Result<usize> {
        let protected: BTreeSet<TypeId> =
            self.entries.iter().map(|e| e.derivation.derived).collect();
        Ok(minimize_surrogates(schema, &protected)?.removed.len())
    }

    /// Iterates the entries in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.iter()
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no view is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One line per view: name, definition, parent.
    pub fn describe(&self, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let attrs: Vec<&str> = e
                .derivation
                .projection
                .iter()
                .map(|&a| schema.attr_name(a))
                .collect();
            let _ = write!(
                out,
                "{} = Π_{{{}}}({})",
                e.name,
                attrs.join(", "),
                schema.type_name(e.derivation.source)
            );
            if let Some(p) = &e.parent {
                let _ = write!(out, "  [stacked on {p}]");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_workload::figures;

    fn proj(s: &Schema, names: &[&str]) -> BTreeSet<AttrId> {
        names.iter().map(|n| s.attr_id(n).unwrap()).collect()
    }

    #[test]
    fn create_lookup_drop() {
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let mut cat = ViewCatalog::new();
        let p = proj(&s, &["SSN", "pay_rate"]);
        cat.create(&mut s, "badge", employee, &p, &ProjectionOptions::default())
            .unwrap();
        assert_eq!(cat.len(), 1);
        let vt = cat.view_type("badge").unwrap();
        assert_eq!(s.cumulative_attrs(vt), p);
        assert!(cat.entry("badge").unwrap().parent.is_none());
        cat.drop_view(&mut s, "badge").unwrap();
        assert!(cat.is_empty());
        assert_eq!(s.render_hierarchy(), figures::fig1().render_hierarchy());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let mut cat = ViewCatalog::new();
        let p = proj(&s, &["SSN"]);
        cat.create(&mut s, "v", employee, &p, &ProjectionOptions::default())
            .unwrap();
        let err = cat
            .create(&mut s, "v", employee, &p, &ProjectionOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("already exists"));
    }

    #[test]
    fn stacking_tracks_parents_and_blocks_drops() {
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let mut cat = ViewCatalog::new();
        let p_outer = proj(&s, &["SSN", "date_of_birth"]);
        cat.create(
            &mut s,
            "outer",
            employee,
            &p_outer,
            &ProjectionOptions::default(),
        )
        .unwrap();
        let outer_ty = cat.view_type("outer").unwrap();
        let p_inner = proj(&s, &["SSN"]);
        cat.create(
            &mut s,
            "inner",
            outer_ty,
            &p_inner,
            &ProjectionOptions::default(),
        )
        .unwrap();
        assert_eq!(cat.entry("inner").unwrap().parent.as_deref(), Some("outer"));
        assert_eq!(cat.dependents("outer"), vec!["inner"]);

        let err = cat.drop_view(&mut s, "outer").unwrap_err();
        assert!(err.to_string().contains("dependent views exist"));
        assert_eq!(cat.len(), 2, "failed drop must not remove the entry");

        let text = cat.describe(&s);
        assert!(text.contains("inner = Π_{SSN}"));
        assert!(text.contains("[stacked on outer]"));

        cat.drop_all(&mut s).unwrap();
        assert!(cat.is_empty());
        assert_eq!(s.render_hierarchy(), figures::fig1().render_hierarchy());
        s.validate().unwrap();
    }

    #[test]
    fn minimize_protects_views() {
        let mut s = figures::fig3();
        let a = s.type_id("A").unwrap();
        let mut cat = ViewCatalog::new();
        let p1 = proj(&s, &["a2", "e2", "h2"]);
        cat.create(&mut s, "v1", a, &p1, &ProjectionOptions::default())
            .unwrap();
        let v1 = cat.view_type("v1").unwrap();
        let p2 = proj(&s, &["h2"]);
        cat.create(&mut s, "v2", v1, &p2, &ProjectionOptions::default())
            .unwrap();
        let removed = cat.minimize(&mut s).unwrap();
        assert!(removed > 0);
        assert!(s.is_live(cat.view_type("v1").unwrap()));
        assert!(s.is_live(cat.view_type("v2").unwrap()));
        s.validate().unwrap();
    }

    #[test]
    fn unknown_view_errors() {
        let mut s = figures::fig1();
        let mut cat = ViewCatalog::new();
        let err = cat.drop_view(&mut s, "ghost").unwrap_err();
        assert!(err.to_string().contains("no view named"));
        assert!(cat.view_type("ghost").is_none());
    }
}
