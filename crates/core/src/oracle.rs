//! An independent reference implementation of method applicability.
//!
//! The paper's stack-based `IsApplicable` computes, in effect, the
//! **greatest fixpoint** of "a method is applicable if its accessed
//! attribute is projected / every relevant call has some applicable
//! candidate": cycles are assumed applicable until contradicted. This
//! module computes that fixpoint directly — start from *every* method
//! applicable to the source type and iteratively delete methods whose
//! requirements fail until nothing changes.
//!
//! The two implementations share the call-site analysis and candidate
//! rule but nothing else; property tests assert they always agree, which
//! is the strongest check we have on the optimistic-cycle bookkeeping.

use std::collections::BTreeSet;
use td_model::{AttrId, CallArg, MethodId, Schema, TypeId};

use crate::applicability::{call_candidates, Applicability};
use crate::error::Result;

/// Computes the applicable-method set for `Π_projection(source)` by
/// greatest-fixpoint iteration. Returns the surviving methods as a sorted
/// set.
pub fn applicability_fixpoint(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
) -> Result<BTreeSet<MethodId>> {
    let universe: Vec<MethodId> = schema.methods_applicable_to_type(source);
    let mut alive: BTreeSet<MethodId> = universe.iter().copied().collect();

    // Pre-compute relevant call sites and their candidate sets once.
    let mut requirements: Vec<(MethodId, Vec<Vec<MethodId>>)> = Vec::new();
    let mut scratch: Vec<CallArg> = Vec::new();
    for &m in &universe {
        let method = schema.method(m);
        if let Some(attr) = method.kind.accessed_attr() {
            if !projection.contains(&attr) {
                alive.remove(&m);
            }
            continue;
        }
        let mut candidate_sets = Vec::new();
        for site in schema.call_sites(m, source)? {
            if site.source_positions.is_empty() {
                continue;
            }
            let (candidates, _) = call_candidates(schema, source, &site, &mut scratch);
            candidate_sets.push(candidates);
        }
        requirements.push((m, candidate_sets));
    }

    // Delete until stable.
    loop {
        let mut changed = false;
        for (m, candidate_sets) in &requirements {
            if !alive.contains(m) {
                continue;
            }
            let ok = candidate_sets
                .iter()
                .all(|cands| cands.iter().any(|c| alive.contains(c)));
            if !ok {
                alive.remove(m);
                changed = true;
            }
        }
        if !changed {
            return Ok(alive);
        }
    }
}

/// [`applicability_fixpoint`] packaged as an [`Applicability`] record, so
/// the oracle can serve as a drop-in engine behind
/// [`crate::ProjectionOptions`]'s `engine` selector. Classification lists
/// are in universe (method-id) order; the trace is empty and `passes` is
/// reported as 1 (the oracle has no pass structure to speak of).
pub fn compute_applicability_fixpoint(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
) -> Result<Applicability> {
    let alive = applicability_fixpoint(schema, source, projection)?;
    let universe = schema.methods_applicable_to_type(source);
    let mut applicable = Vec::new();
    let mut not_applicable = Vec::new();
    for &m in &universe {
        if alive.contains(&m) {
            applicable.push(m);
        } else {
            not_applicable.push(m);
        }
    }
    Ok(Applicability {
        source,
        projection: projection.clone(),
        universe,
        applicable,
        applicable_set: alive.into_iter().collect(),
        not_applicable,
        trace: Vec::new(),
        passes: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::applicability::compute_applicability;
    use td_model::{BodyBuilder, Expr, MethodKind, Specializer, ValueType};

    #[test]
    fn oracle_agrees_with_stack_algorithm_on_cycles() {
        // Mixed case: a surviving pure cycle plus a dying one.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        let (get_y, _) = s.add_reader(y, a).unwrap();
        let p = s.add_gf("p", 1, None).unwrap();
        let q = s.add_gf("q", 1, None).unwrap();
        let r_gf = s.add_gf("r", 1, None).unwrap();
        // p1 <-> q1 pure cycle (survives); r1 -> r and get_y (dies).
        let mut bb = BodyBuilder::new();
        bb.call(q, vec![Expr::Param(0)]);
        s.add_method(
            p,
            "p1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(p, vec![Expr::Param(0)]);
        s.add_method(
            q,
            "q1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(r_gf, vec![Expr::Param(0)]);
        bb.call(get_y, vec![Expr::Param(0)]);
        s.add_method(
            r_gf,
            "r1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();

        let proj = BTreeSet::new();
        let stack = compute_applicability(&s, a, &proj, false).unwrap();
        let fix = applicability_fixpoint(&s, a, &proj).unwrap();
        let stack_set: BTreeSet<MethodId> = stack.applicable.iter().copied().collect();
        assert_eq!(stack_set, fix);
        assert_eq!(fix.len(), 2); // p1 and q1
    }

    #[test]
    fn oracle_handles_accessors() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (_, mx) = s.add_reader(x, a).unwrap();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let fix = applicability_fixpoint(&s, a, &proj).unwrap();
        assert!(fix.contains(&mx));
        let fix = applicability_fixpoint(&s, a, &BTreeSet::new()).unwrap();
        assert!(!fix.contains(&mx));
    }
}
