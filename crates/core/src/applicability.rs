//! `IsApplicable` — inferring the behavior of a derived type (§4).
//!
//! A method applicable to the source type `T` remains applicable to the
//! projection `T̂ = Π_{a…}(T)` **unless** it (transitively) accesses an
//! attribute outside the projection list, or it invokes a generic function
//! on a source-derived argument for which no method remains applicable.
//!
//! The algorithm analyzes each method's call graph, which bottoms out on
//! accessor methods. Three complications (§4.1) shape the implementation:
//!
//! * **cycles** in the call graph: when a method already under test is
//!   re-encountered it is *optimistically* assumed applicable, and every
//!   method above it on the test stack is recorded in its dependency list;
//!   if the assumption later proves wrong those dependents are retracted
//!   from the `Applicable` list (their status reverts to unknown and they
//!   are re-tested).
//! * **less-specific methods**: a call checks out if *any* applicable
//!   method of the callee survives, not just the most specific one.
//! * **multiple source-typed arguments**: if exactly one argument of a
//!   call corresponds to a source-derived parameter, the candidate set is
//!   the methods applicable to the call with `T` substituted at that
//!   position (case 1); if several do, the candidate set is the methods
//!   applicable to the call as written, which is what guarantees
//!   applicability for *all* combinations of substitutions (case 2).

use std::collections::{BTreeSet, HashMap, HashSet};
use td_model::dataflow::CallSite;
use td_model::{AnalysisPrecision, AttrId, CallArg, GfId, MethodId, Schema, TypeId};

use crate::error::{CoreError, Result};

/// One step of the applicability computation, for reproducing the paper's
/// Example 1 narrative and for debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `IsApplicable` was entered for a method not yet classified.
    Begin {
        /// Method under test.
        method: MethodId,
    },
    /// An accessor method was classified by projection-list membership.
    AccessorCheck {
        /// The accessor.
        method: MethodId,
        /// The attribute it accesses.
        attr: AttrId,
        /// Whether the attribute is in the projection list.
        in_projection: bool,
    },
    /// The method was found on the test stack: optimistically assumed
    /// applicable, with the listed methods recorded as its dependents.
    CycleAssumed {
        /// The method already under test.
        method: MethodId,
        /// Methods above it on the stack, now contingent on it.
        dependents: Vec<MethodId>,
    },
    /// A generic-function call inside a method body was examined.
    CallExamined {
        /// The enclosing method.
        method: MethodId,
        /// The called generic function.
        gf: GfId,
        /// Candidate methods for the call (per the case-1/case-2 rule).
        candidates: Vec<MethodId>,
        /// `Some(j)` when case 1 substituted the source type at position j.
        substituted_at: Option<usize>,
    },
    /// No candidate method of a call checked out; the enclosing method
    /// fails.
    CallFailed {
        /// The enclosing method.
        method: MethodId,
        /// The called generic function.
        gf: GfId,
    },
    /// A method reached a final classification (for this pass).
    Classified {
        /// The method.
        method: MethodId,
        /// `true` = added to `Applicable`, `false` = `NotApplicable`.
        applicable: bool,
    },
    /// A failed method's dependents were retracted from `Applicable`;
    /// their status reverts to unknown.
    DependentsRetracted {
        /// The method that failed.
        failed: MethodId,
        /// The retracted dependents.
        removed: Vec<MethodId>,
    },
    /// The driver re-tests a method whose status was retracted.
    Recheck {
        /// The method re-entering the test.
        method: MethodId,
    },
}

/// Result of the applicability computation for one projection.
#[derive(Debug, Clone)]
pub struct Applicability {
    /// The projection's source type.
    pub source: TypeId,
    /// The projection list.
    pub projection: BTreeSet<AttrId>,
    /// Every method applicable to the source type — the universe the
    /// computation classifies.
    pub universe: Vec<MethodId>,
    /// Methods that remain applicable to the derived type, in
    /// classification order.
    pub applicable: Vec<MethodId>,
    /// The same methods as `applicable`, as a set — this is what answers
    /// [`Applicability::is_applicable`] in O(1) instead of scanning the
    /// classification-order list.
    pub applicable_set: HashSet<MethodId>,
    /// Methods ruled out, in classification order.
    pub not_applicable: Vec<MethodId>,
    /// Trace of the computation (empty unless requested).
    pub trace: Vec<TraceEvent>,
    /// Number of driver passes needed to classify every method.
    pub passes: usize,
}

impl Applicability {
    /// True iff `m` was classified applicable. O(1) — answered from
    /// `applicable_set`, not the classification-order list.
    pub fn is_applicable(&self, m: MethodId) -> bool {
        self.applicable_set.contains(&m)
    }
}

/// Computes which methods remain applicable to `Π_projection(source)`.
///
/// `record_trace` enables the event log (used by the reproduction harness;
/// adds allocation cost, so benches leave it off).
pub fn compute_applicability(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    record_trace: bool,
) -> Result<Applicability> {
    let universe = schema.methods_applicable_to_type(source);
    let mut ctx = Ctx {
        schema,
        source,
        projection,
        applicable: Vec::new(),
        applicable_set: HashSet::new(),
        not_applicable: Vec::new(),
        not_applicable_set: HashSet::new(),
        stack: Vec::new(),
        sites_cache: HashMap::new(),
        scratch: Vec::new(),
        top_level_start: 0,
        trace: Vec::new(),
        record_trace,
    };
    let passes = drive(&mut ctx, &universe)?;
    Ok(Applicability {
        source,
        projection: projection.clone(),
        universe,
        applicable: ctx.applicable,
        applicable_set: ctx.applicable_set,
        not_applicable: ctx.not_applicable,
        trace: ctx.trace,
        passes,
    })
}

/// Computes which methods remain applicable to `Π_projection(source)`
/// using the condensation index (see `td_model::appindex`): methods in the
/// purely conjunctive region of the call graph are classified with one
/// `footprint ⊆ projection` bitset test against the cached index, and only
/// the residue whose reachable region is disjunctive or hits the §4.1
/// case-2 multi-source rule runs the pass-based engine — seeded with the
/// indexed verdicts, so both engines classify identically (the property
/// suite proves it on randomized schemas).
///
/// The index is cached per `(schema generation, source)`, so repeated
/// projections over the same source — the batch engine's common shape —
/// pay the call-graph walk once. `record_trace` delegates wholesale to
/// [`compute_applicability`]: the narrative trace *is* the stack
/// algorithm's execution, and the reproduction harness replays it
/// verbatim.
pub fn compute_applicability_indexed(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    record_trace: bool,
) -> Result<Applicability> {
    compute_applicability_indexed_at(
        schema,
        source,
        projection,
        AnalysisPrecision::Syntactic,
        record_trace,
    )
}

/// [`compute_applicability_indexed`] with an explicit index precision.
///
/// `Semantic` consults the refined index (`td-analyze`'s interprocedural
/// footprints demote fallback methods to conjunctive verdicts), shrinking
/// the residue the pass-based fallback must classify. The refinement is
/// verdict-preserving (see `td_model::appindex::build_with`), so the
/// classification — and every report derived from it — is byte-identical
/// across precisions; only the fallback workload changes.
pub fn compute_applicability_indexed_at(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    precision: AnalysisPrecision,
    record_trace: bool,
) -> Result<Applicability> {
    if record_trace {
        return compute_applicability(schema, source, projection, true);
    }
    let index = schema.cached_applicability_index_at(source, precision)?;
    let proj_bits = index.projection_bits(projection);
    let universe = index.universe().to_vec();

    let mut applicable = Vec::new();
    let mut applicable_set = HashSet::new();
    let mut not_applicable = Vec::new();
    let mut not_applicable_set = HashSet::new();
    let mut pending: Vec<MethodId> = Vec::new();
    for &m in &universe {
        match index.verdict(m, &proj_bits) {
            Some(true) => {
                applicable_set.insert(m);
                applicable.push(m);
            }
            Some(false) => {
                not_applicable_set.insert(m);
                not_applicable.push(m);
            }
            None => pending.push(m),
        }
    }

    let mut passes = 1usize;
    if !pending.is_empty() {
        // Fallback: run the pass-based engine over the undecided residue,
        // with every indexed verdict pre-seeded. Seeding is sound because
        // indexed verdicts are exact (inside the greatest fixpoint), and
        // safe against retraction: seeded `applicable` entries sit below
        // `top_level_start` when the first fallback test begins, so a
        // failed optimistic assumption can never split them off.
        let mut ctx = Ctx {
            schema,
            source,
            projection,
            applicable,
            applicable_set,
            not_applicable,
            not_applicable_set,
            stack: Vec::new(),
            sites_cache: HashMap::new(),
            scratch: Vec::new(),
            top_level_start: 0,
            trace: Vec::new(),
            record_trace: false,
        };
        passes = drive(&mut ctx, &pending)?;
        applicable = ctx.applicable;
        applicable_set = ctx.applicable_set;
        not_applicable = ctx.not_applicable;
        // The fallback appends its verdicts after the indexed ones, and
        // the indexed/fallback split depends on the index precision —
        // re-emit both lists in universe order so the classification
        // bytes are identical at every precision.
        let pos: HashMap<MethodId, usize> =
            universe.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        applicable.sort_by_key(|m| pos.get(m).copied().unwrap_or(usize::MAX));
        not_applicable.sort_by_key(|m| pos.get(m).copied().unwrap_or(usize::MAX));
    }

    Ok(Applicability {
        source,
        projection: projection.clone(),
        universe,
        applicable,
        applicable_set,
        not_applicable,
        trace: Vec::new(),
        passes,
    })
}

/// The outer pass loop shared by [`compute_applicability`] (worklist =
/// whole universe) and the indexed engine's fallback (worklist = the
/// undecided residue): re-test unclassified worklist methods until all are
/// classified, with a non-convergence guard — retraction strictly shrinks
/// the optimistic set, so `worklist.len() + 2` passes always suffice.
/// Returns the number of passes taken.
fn drive(ctx: &mut Ctx<'_>, worklist: &[MethodId]) -> Result<usize> {
    let mut passes = 0usize;
    loop {
        passes += 1;
        if passes > worklist.len() + 2 {
            return Err(CoreError::NonConvergence { iterations: passes });
        }
        let mut any_unknown = false;
        for &m in worklist {
            if ctx.is_classified(m) {
                continue;
            }
            any_unknown = true;
            if passes > 1 && ctx.record_trace {
                ctx.trace.push(TraceEvent::Recheck { method: m });
            }
            ctx.top_level_start = ctx.applicable.len();
            ctx.test(m)?;
            debug_assert!(
                ctx.stack.is_empty(),
                "MethodStack must drain per top-level call"
            );
        }
        let all_done = worklist.iter().all(|&m| ctx.is_classified(m));
        if all_done {
            return Ok(passes);
        }
        if !any_unknown {
            // Defensive: everything was classified at loop entry yet
            // `all_done` is false — cannot happen, but never spin.
            return Err(CoreError::NonConvergence { iterations: passes });
        }
    }
}

/// Computes the candidate methods for a call site, per the §4.1 case
/// analysis — a thin delegation to [`Schema::site_candidates`], which
/// every engine (stack, fixpoint oracle, condensation index, explain,
/// ablation) shares, so all of them agree on what a call requires.
///
/// `scratch` is a caller-owned buffer reused for the case-1 argument
/// substitution. `Schema::applicable_methods` is served by td-model's
/// dispatch cache, so the many call sites that re-examine the same
/// `(gf, args)` pair during a run resolve to a cached table after the
/// first lookup.
pub(crate) fn call_candidates(
    schema: &Schema,
    source: TypeId,
    site: &CallSite,
    scratch: &mut Vec<CallArg>,
) -> (Vec<MethodId>, Option<usize>) {
    schema.site_candidates(source, site, scratch)
}

struct Ctx<'a> {
    schema: &'a Schema,
    source: TypeId,
    projection: &'a BTreeSet<AttrId>,
    applicable: Vec<MethodId>,
    applicable_set: HashSet<MethodId>,
    not_applicable: Vec<MethodId>,
    not_applicable_set: HashSet<MethodId>,
    /// The paper's `MethodStack`: `(method, dependencyList)` pairs.
    stack: Vec<(MethodId, Vec<MethodId>)>,
    /// Relevant call sites per method, computed once.
    sites_cache: HashMap<MethodId, Vec<CallSite>>,
    /// Reused case-1 argument-substitution buffer (see `call_candidates`).
    scratch: Vec<CallArg>,
    /// `applicable.len()` at entry to the current top-level `test` call —
    /// the boundary below which classifications are already known sound.
    top_level_start: usize,
    trace: Vec<TraceEvent>,
    record_trace: bool,
}

impl Ctx<'_> {
    fn is_classified(&self, m: MethodId) -> bool {
        self.applicable_set.contains(&m) || self.not_applicable_set.contains(&m)
    }

    fn mark_applicable(&mut self, m: MethodId) {
        if self.applicable_set.insert(m) {
            self.applicable.push(m);
        }
        if self.record_trace {
            self.trace.push(TraceEvent::Classified {
                method: m,
                applicable: true,
            });
        }
    }

    fn mark_not_applicable(&mut self, m: MethodId) {
        if self.not_applicable_set.insert(m) {
            self.not_applicable.push(m);
        }
        if self.record_trace {
            self.trace.push(TraceEvent::Classified {
                method: m,
                applicable: false,
            });
        }
    }

    /// Retracts the dependents of a failed optimistic assumption.
    ///
    /// The paper removes exactly `dependencyList` from `Applicable`, but
    /// that under-retracts in two ways: (a) a method may be classified
    /// applicable after consulting a *provisional* `Applicable` entry
    /// without itself being on the stack, so it never appears in any
    /// dependency list; (b) a retracted method's own dependency list dies
    /// with its stack frame, so when it is later re-classified
    /// not-applicable its consumers are not revisited. Both are repaired
    /// by one observation: every classification made during a top-level
    /// `test` call in which some assumption failed is suspect, while a
    /// top-level call that completes without failures is a self-consistent
    /// set and therefore inside the greatest fixpoint. So on a failure
    /// with a non-empty dependency list we retract the whole `Applicable`
    /// suffix classified during the current top-level call. Retracted
    /// methods revert to unknown and are re-tested by the driver;
    /// over-retraction costs time, never correctness.
    fn retract(&mut self, failed: MethodId, deps: Vec<MethodId>) {
        if deps.is_empty() || self.applicable.len() <= self.top_level_start {
            return;
        }
        let removed: Vec<MethodId> = self.applicable.split_off(self.top_level_start);
        for d in &removed {
            self.applicable_set.remove(d);
        }
        if self.record_trace && !removed.is_empty() {
            self.trace
                .push(TraceEvent::DependentsRetracted { failed, removed });
        }
    }

    /// Relevant call sites of `m` (those with at least one source-derived
    /// argument position).
    fn relevant_sites(&mut self, m: MethodId) -> Result<&[CallSite]> {
        if !self.sites_cache.contains_key(&m) {
            let sites: Vec<CallSite> = self
                .schema
                .call_sites(m, self.source)?
                .into_iter()
                .filter(|s| !s.source_positions.is_empty())
                .collect();
            self.sites_cache.insert(m, sites);
        }
        Ok(&self.sites_cache[&m])
    }

    /// The paper's `IsApplicable(m, T, p)`.
    fn test(&mut self, m: MethodId) -> Result<bool> {
        // Already processed?
        if self.applicable_set.contains(&m) {
            return Ok(true);
        }
        if self.not_applicable_set.contains(&m) {
            return Ok(false);
        }

        let method = self.schema.method(m);

        // Accessor methods bottom out the call graph.
        if let Some(attr) = method.kind.accessed_attr() {
            let in_projection = self.projection.contains(&attr);
            if self.record_trace {
                self.trace.push(TraceEvent::AccessorCheck {
                    method: m,
                    attr,
                    in_projection,
                });
            }
            if in_projection {
                self.mark_applicable(m);
                return Ok(true);
            }
            self.mark_not_applicable(m);
            return Ok(false);
        }

        // General method: if already on the stack, optimistically assume
        // applicable and record every method above it as a dependent.
        if let Some(pos) = self.stack.iter().position(|(x, _)| *x == m) {
            let above: Vec<MethodId> = self.stack[pos + 1..].iter().map(|(x, _)| *x).collect();
            if self.record_trace {
                self.trace.push(TraceEvent::CycleAssumed {
                    method: m,
                    dependents: above.clone(),
                });
            }
            self.stack[pos].1.extend(above);
            return Ok(true);
        }

        if self.record_trace {
            self.trace.push(TraceEvent::Begin { method: m });
        }
        self.stack.push((m, Vec::new()));

        let sites = self.relevant_sites(m)?.to_vec();
        for site in &sites {
            let (candidates, substituted_at) =
                call_candidates(self.schema, self.source, site, &mut self.scratch);
            if self.record_trace {
                self.trace.push(TraceEvent::CallExamined {
                    method: m,
                    gf: site.gf,
                    candidates: candidates.clone(),
                    substituted_at,
                });
            }
            let mut satisfied = false;
            for nk in candidates {
                if self.test(nk)? {
                    satisfied = true;
                    break;
                }
            }
            if !satisfied {
                if self.record_trace {
                    self.trace.push(TraceEvent::CallFailed {
                        method: m,
                        gf: site.gf,
                    });
                }
                // Falling out: no applicable method for this call. Retract
                // everything contingent on m, classify m not applicable.
                let (_, deps) = self.stack.pop().expect("frame pushed above");
                self.retract(m, deps);
                self.mark_not_applicable(m);
                return Ok(false);
            }
        }

        // Every call in m checked out.
        self.mark_applicable(m);
        self.stack.pop();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{BodyBuilder, Expr, MethodKind, Specializer, ValueType};

    /// Schema:  B <= A, attrs x@A, y@A; readers; methods
    ///   f1(A) = { get_x(p0) }
    ///   f2(B) = { get_y(p0) }
    ///   h1(A) = { f(p0) }         -- survives iff f survives via any method
    /// The projection source is B, so both f methods are candidates for
    /// the call f(B) inside h1.
    fn small() -> (Schema, TypeId, Vec<MethodId>) {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        let (get_x, mx) = s.add_reader(x, a).unwrap();
        let (get_y, my) = s.add_reader(y, a).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        let f1 = s
            .add_method(
                f,
                "f1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_y, vec![Expr::Param(0)]);
        let f2 = s
            .add_method(
                f,
                "f2",
                vec![Specializer::Type(b)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let h = s.add_gf("h", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f, vec![Expr::Param(0)]);
        let h1 = s
            .add_method(
                h,
                "h1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        (s, b, vec![mx, my, f1, f2, h1])
    }

    fn attrs(s: &Schema, names: &[&str]) -> BTreeSet<AttrId> {
        names.iter().map(|n| s.attr_id(n).unwrap()).collect()
    }

    #[test]
    fn accessor_filtered_by_projection() {
        let (s, a, m) = small();
        let [mx, my, ..] = m[..] else { unreachable!() };
        let r = compute_applicability(&s, a, &attrs(&s, &["x"]), false).unwrap();
        assert!(r.is_applicable(mx));
        assert!(!r.is_applicable(my));
        assert!(r.not_applicable.contains(&my));
    }

    #[test]
    fn general_method_follows_call_graph() {
        let (s, a, m) = small();
        let [_, _, f1, f2, h1] = m[..] else {
            unreachable!()
        };
        let r = compute_applicability(&s, a, &attrs(&s, &["x"]), false).unwrap();
        assert!(r.is_applicable(f1));
        assert!(!r.is_applicable(f2)); // needs y
                                       // h1 calls f; f1 still works, so h1 survives via the less-specific
                                       // route even though f2 died.
        assert!(r.is_applicable(h1));
    }

    #[test]
    fn method_dies_when_no_callee_survives() {
        let (s, a, m) = small();
        let [_, _, f1, f2, h1] = m[..] else {
            unreachable!()
        };
        // Project onto neither x nor y: nothing survives except nothing.
        let r = compute_applicability(&s, a, &BTreeSet::new(), false).unwrap();
        for mm in [f1, f2, h1] {
            assert!(!r.is_applicable(mm));
        }
        assert!(r.applicable.is_empty());
    }

    #[test]
    fn empty_body_method_is_applicable() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let m = s
            .add_method(
                f,
                "noop",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let r = compute_applicability(&s, a, &BTreeSet::new(), false).unwrap();
        assert!(r.is_applicable(m));
    }

    #[test]
    fn direct_recursion_is_optimistic() {
        // rec1(A) = { get_x(p0); rec(p0) } — self-recursive; survives when
        // x is projected (the cycle is assumed applicable).
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        let rec = s.add_gf("rec", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        bb.call(rec, vec![Expr::Param(0)]);
        let m = s
            .add_method(
                rec,
                "rec1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let r = compute_applicability(&s, a, &attrs(&s, &["x"]), true).unwrap();
        assert!(r.is_applicable(m));
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::CycleAssumed { .. })));

        // ...and dies when x is not projected (the accessor fails first).
        let r = compute_applicability(&s, a, &BTreeSet::new(), false).unwrap();
        assert!(!r.is_applicable(m));
    }

    #[test]
    fn mutual_recursion_where_cycle_must_die() {
        // The paper's x1/y1 pattern: p1(A) = { q(p0); get_y(p0) },
        // q1(A) = { p(p0) }. Testing p1 recurses into q1, which hits the
        // cycle, is optimistically classified applicable, and is recorded
        // as a dependent of p1. p1 then fails on get_y, so q1 must be
        // retracted (status unknown) and re-tested to not-applicable.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        let (get_y, _) = s.add_reader(y, a).unwrap();
        let p = s.add_gf("p", 1, None).unwrap();
        let q = s.add_gf("q", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(q, vec![Expr::Param(0)]);
        bb.call(get_y, vec![Expr::Param(0)]);
        let p1 = s
            .add_method(
                p,
                "p1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(p, vec![Expr::Param(0)]);
        let q1 = s
            .add_method(
                q,
                "q1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let r = compute_applicability(&s, a, &BTreeSet::new(), true).unwrap();
        assert!(!r.is_applicable(p1));
        assert!(!r.is_applicable(q1));
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::DependentsRetracted { .. })));
        // q1 was first classified applicable (optimistically), then
        // retracted and reclassified: two Classified events for it.
        let q1_events = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Classified { method, .. } if *method == q1))
            .count();
        assert_eq!(q1_events, 2);
    }

    #[test]
    fn mutual_recursion_where_cycle_survives() {
        // p1(A) = { q(p0) }, q1(A) = { p(p0) } — pure cycle, nothing
        // touches state: the greatest fixpoint keeps both.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let p = s.add_gf("p", 1, None).unwrap();
        let q = s.add_gf("q", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(q, vec![Expr::Param(0)]);
        let p1 = s
            .add_method(
                p,
                "p1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(p, vec![Expr::Param(0)]);
        let q1 = s
            .add_method(
                q,
                "q1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let r = compute_applicability(&s, a, &BTreeSet::new(), false).unwrap();
        assert!(r.is_applicable(p1));
        assert!(r.is_applicable(q1));
    }

    #[test]
    fn universe_limited_to_methods_applicable_to_source() {
        // A method on an unrelated type never appears in the result.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let u = s.add_type("Unrelated", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let m_u = s
            .add_method(
                f,
                "f_u",
                vec![Specializer::Type(u)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let r = compute_applicability(&s, a, &BTreeSet::new(), false).unwrap();
        assert!(r.universe.is_empty());
        assert!(!r.is_applicable(m_u));
        assert!(!r.not_applicable.contains(&m_u));
    }

    /// Asserts that the indexed engine and the stack engine classify the
    /// universe identically (as sets) for the given projection.
    fn assert_indexed_agrees(s: &Schema, source: TypeId, proj: &BTreeSet<AttrId>) {
        let stack = compute_applicability(s, source, proj, false).unwrap();
        let indexed = compute_applicability_indexed(s, source, proj, false).unwrap();
        let to_set = |v: &[MethodId]| v.iter().copied().collect::<BTreeSet<_>>();
        assert_eq!(to_set(&stack.applicable), to_set(&indexed.applicable));
        assert_eq!(
            to_set(&stack.not_applicable),
            to_set(&indexed.not_applicable)
        );
        assert_eq!(to_set(&stack.universe), to_set(&indexed.universe));
        for &m in &stack.universe {
            assert_eq!(stack.is_applicable(m), indexed.is_applicable(m));
        }
    }

    #[test]
    fn indexed_engine_matches_stack_on_small_fixture() {
        let (s, b, _) = small();
        for proj in [
            attrs(&s, &["x"]),
            attrs(&s, &["y"]),
            attrs(&s, &["x", "y"]),
            BTreeSet::new(),
        ] {
            assert_indexed_agrees(&s, b, &proj);
        }
    }

    #[test]
    fn indexed_engine_matches_stack_on_paper_example() {
        use td_workload::figures;
        let s = figures::fig3();
        let a = s.type_id("A").unwrap();
        let proj: BTreeSet<AttrId> = figures::FIG4_PROJECTION
            .iter()
            .map(|n| s.attr_id(n).unwrap())
            .collect();
        assert_indexed_agrees(&s, a, &proj);
        // And the result is the paper's own answer.
        let indexed = compute_applicability_indexed(&s, a, &proj, false).unwrap();
        let names: BTreeSet<&str> = indexed
            .applicable
            .iter()
            .map(|&m| s.method_label(m))
            .collect();
        let expected: BTreeSet<&str> = figures::EX1_APPLICABLE.iter().copied().collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn indexed_engine_falls_back_on_multi_candidate_calls() {
        // small()'s h1 calls f with two candidates (f1 on A, f2 on B): a
        // disjunction the pure-AND index must refuse to answer.
        let (s, b, m) = small();
        let [_, _, _, _, h1] = m[..] else {
            unreachable!()
        };
        let index = s.cached_applicability_index(b).unwrap();
        assert!(!index.is_fully_indexed());
        let proj_bits = index.projection_bits(&attrs(&s, &["x"]));
        assert_eq!(index.verdict(h1, &proj_bits), None, "h1 must fall back");
        // The fallback still yields the right overall answer.
        assert_indexed_agrees(&s, b, &attrs(&s, &["x"]));
    }

    #[test]
    fn index_footprints_on_paper_example() {
        // Example 1 (fig. 3) from source A: the accessor and `u`-suite
        // methods are single-candidate (indexable), while `v1`, `v2`,
        // `w2`, `x1` and `y1` sit behind disjunctive calls (the `u`, `v`
        // and `x` generic functions each have several candidates from A)
        // and must take the fallback seam.
        use td_workload::figures;
        let s = figures::fig3();
        let a = s.type_id("A").unwrap();
        let index = s.cached_applicability_index(a).unwrap();
        assert!(!index.is_fully_indexed());
        assert_eq!(index.fallback_methods(), 5);
        let fp_names = |label: &str| -> BTreeSet<String> {
            let m = s.method_by_label(label).unwrap();
            index
                .footprint(m)
                .expect("method in universe")
                .iter()
                .map(|i| s.attr_name(i).to_string())
                .collect()
        };
        let set =
            |names: &[&str]| -> BTreeSet<String> { names.iter().map(|n| n.to_string()).collect() };
        // An accessor's footprint is its own attribute…
        assert_eq!(fp_names("get_h2"), set(&["h2"]));
        // …and a single-candidate chain unions transitively:
        // u3(B) = { w(…) } → w2(C) = { get_h2(B) } needs exactly h2.
        assert_eq!(fp_names("u3"), set(&["h2"]));
        assert_eq!(fp_names("u1"), set(&["a1"]));

        // Verdicts under the fig. 4 projection: indexed methods answer by
        // bitset test and match the paper; fallback methods answer None.
        let proj: BTreeSet<AttrId> = figures::FIG4_PROJECTION
            .iter()
            .map(|n| s.attr_id(n).unwrap())
            .collect();
        let bits = index.projection_bits(&proj);
        let fallback = ["v1", "v2", "w2", "x1", "y1"];
        for &m in index.universe() {
            let label = s.method_label(m);
            if fallback.contains(&label) {
                assert_eq!(index.verdict(m, &bits), None, "{label} must fall back");
            } else {
                let expected = figures::EX1_APPLICABLE.contains(&label);
                assert_eq!(
                    index.verdict(m, &bits),
                    Some(expected),
                    "verdict for {label}"
                );
            }
        }
    }
}
