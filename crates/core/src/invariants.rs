//! Machine-checked statements of the paper's correctness claims.
//!
//! §5: "the new type has the correct state and behavior, and the types …
//! have both the same cumulative state and behavior as before the creation
//! of the new type." We verify, given the schema before and after a
//! derivation:
//!
//! * **I1 state preservation** — every original type's cumulative
//!   attribute set is unchanged;
//! * **I2 behavior preservation** — for every generic function, dispatch
//!   over tuples of original types selects the same method (method ids are
//!   stable across factorization, so this is a direct comparison);
//! * **I3 derived state** — the derived type's cumulative attributes are
//!   exactly the projection list;
//! * **I4 derived behavior** — the methods applicable to the derived type
//!   are exactly those `IsApplicable` inferred;
//! * **I5 well-formedness** — the refactored schema still validates
//!   (acyclic, consistent precedence, type-correct bodies);
//! * **subtype preservation** — the subtype relation restricted to
//!   original types is unchanged.
//!
//! Dispatch comparison enumerates argument tuples exhaustively up to a
//! budget and deterministically strides beyond it, so reports are
//! reproducible.
//!
//! The I2 replay is the motivating workload for td-model's dispatch
//! acceleration layer: it calls `most_specific` once per tuple, and every
//! tuple re-walks the same handful of CPLs. Both schemas' replays run
//! through the memoized caches, and the report carries the refactored
//! schema's cache counters so callers can see how warm the replay ran.

use std::collections::BTreeSet;
use td_model::{AttrId, CallArg, DispatchCacheStats, GfId, MethodId, Schema, TypeId};

/// One observed divergence from the paper's guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An original type's cumulative attribute set changed (I1).
    StateChanged {
        /// The affected type.
        ty: TypeId,
        /// Attributes it lost.
        missing: Vec<AttrId>,
        /// Attributes it gained.
        extra: Vec<AttrId>,
    },
    /// Dispatch over original types changed (I2).
    DispatchChanged {
        /// The generic function.
        gf: GfId,
        /// The argument tuple (original types).
        args: Vec<TypeId>,
        /// Most specific applicable method before.
        before: Option<MethodId>,
        /// Most specific applicable method after.
        after: Option<MethodId>,
    },
    /// The derived type's cumulative state is not the projection (I3).
    DerivedStateWrong {
        /// The derived type.
        derived: TypeId,
        /// Projected attributes it lacks.
        missing: Vec<AttrId>,
        /// Unprojected attributes it has.
        extra: Vec<AttrId>,
    },
    /// The derived type does not inherit exactly the inferred methods (I4).
    DerivedBehaviorWrong {
        /// The derived type.
        derived: TypeId,
        /// Inferred-applicable methods that do not apply to it.
        missing: Vec<MethodId>,
        /// Methods that apply to it but were not inferred.
        extra: Vec<MethodId>,
    },
    /// The refactored schema fails validation (I5).
    SchemaInvalid(String),
    /// The subtype relation over original types changed.
    SubtypeChanged {
        /// Candidate subtype.
        sub: TypeId,
        /// Candidate supertype.
        sup: TypeId,
        /// Relation held before.
        before: bool,
        /// Relation holds after.
        after: bool,
    },
}

/// The outcome of checking all invariants for one derivation.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// All violations found (empty = every guarantee holds).
    pub violations: Vec<Violation>,
    /// Number of dispatch tuples compared for I2.
    pub dispatch_tuples_checked: usize,
    /// Dispatch-cache counters of the refactored (`after`) schema once the
    /// I2 replay finished — shows how much of the replay was served warm.
    pub dispatch_cache: DispatchCacheStats,
}

impl InvariantReport {
    /// True when no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Budget of dispatch tuples examined per generic function.
const TUPLE_BUDGET: usize = 2048;
/// Budget of dispatch tuples examined across the whole I2 replay. On
/// paper-scale schemas the per-gf budget binds first and behavior is
/// unchanged; on generated schemas with thousands of generic functions
/// this caps the replay (and the dispatch-cache footprint it warms) at
/// a fixed sample instead of letting it grow with `gfs × tuples`.
const TOTAL_TUPLE_BUDGET: usize = 200_000;
/// Budget of type pairs examined for subtype preservation.
const PAIR_BUDGET: usize = 40_000;

/// Checks all invariants. `before` is a clone of the schema taken before
/// the derivation; `derived`, `projection` and `applicable` come from the
/// derivation outcome.
pub fn check_invariants(
    before: &Schema,
    after: &Schema,
    derived: TypeId,
    projection: &BTreeSet<AttrId>,
    applicable: &[MethodId],
) -> InvariantReport {
    let mut report = InvariantReport::default();

    // I5 first: a malformed schema makes the other checks meaningless.
    if let Err(e) = after.validate() {
        report
            .violations
            .push(Violation::SchemaInvalid(e.to_string()));
        report.dispatch_cache = after.dispatch_cache_stats();
        return report;
    }

    let originals: Vec<TypeId> = before.live_type_ids().collect();

    // I1: cumulative state of original types.
    for &t in &originals {
        let b = before.cumulative_attrs(t);
        let a = after.cumulative_attrs(t);
        if a != b {
            report.violations.push(Violation::StateChanged {
                ty: t,
                missing: b.difference(&a).copied().collect(),
                extra: a.difference(&b).copied().collect(),
            });
        }
    }

    // Subtype preservation over original types.
    let total_pairs = originals.len() * originals.len();
    let stride = total_pairs.div_ceil(PAIR_BUDGET).max(1);
    for idx in (0..total_pairs).step_by(stride) {
        let x = originals[idx / originals.len()];
        let y = originals[idx % originals.len()];
        let was = before.is_subtype(x, y);
        let is = after.is_subtype(x, y);
        if was != is {
            report.violations.push(Violation::SubtypeChanged {
                sub: x,
                sup: y,
                before: was,
                after: is,
            });
        }
    }

    // I2: dispatch over original-type tuples.
    let n_gfs = before.gf_ids().count();
    let per_gf_budget = (TOTAL_TUPLE_BUDGET / n_gfs.max(1)).clamp(1, TUPLE_BUDGET);
    for gf in before.gf_ids() {
        let arity = before.gf(gf).arity;
        if arity == 0 || originals.is_empty() {
            continue;
        }
        // Only object-typed tuples are interesting; primitive positions do
        // not change across factorization. Enumerate type tuples over the
        // original types, strided to the budget.
        let total = originals
            .len()
            .checked_pow(arity as u32)
            .unwrap_or(usize::MAX);
        let stride = total.div_ceil(per_gf_budget).max(1);
        let mut idx = 0usize;
        while idx < total {
            let mut rem = idx;
            let mut tuple = Vec::with_capacity(arity);
            for _ in 0..arity {
                tuple.push(originals[rem % originals.len()]);
                rem /= originals.len();
            }
            let args: Vec<CallArg> = tuple.iter().map(|&t| CallArg::Object(t)).collect();
            let b = before.most_specific(gf, &args);
            let a = after.most_specific(gf, &args);
            report.dispatch_tuples_checked += 1;
            match (b, a) {
                (Ok(b), Ok(a)) => {
                    if b != a {
                        report.violations.push(Violation::DispatchChanged {
                            gf,
                            args: tuple,
                            before: b,
                            after: a,
                        });
                    }
                }
                (Err(e), _) | (_, Err(e)) => {
                    report
                        .violations
                        .push(Violation::SchemaInvalid(format!("dispatch failed: {e}")));
                }
            }
            idx += stride;
        }
    }

    // I3: derived state == projection.
    let derived_attrs = after.cumulative_attrs(derived);
    if &derived_attrs != projection {
        report.violations.push(Violation::DerivedStateWrong {
            derived,
            missing: projection.difference(&derived_attrs).copied().collect(),
            extra: derived_attrs.difference(projection).copied().collect(),
        });
    }

    // I4: methods applicable to the derived type == inferred set.
    let actual: BTreeSet<MethodId> = after
        .methods_applicable_to_type(derived)
        .into_iter()
        .collect();
    let inferred: BTreeSet<MethodId> = applicable.iter().copied().collect();
    if actual != inferred {
        report.violations.push(Violation::DerivedBehaviorWrong {
            derived,
            missing: inferred.difference(&actual).copied().collect(),
            extra: actual.difference(&inferred).copied().collect(),
        });
    }

    report.dispatch_cache = after.dispatch_cache_stats();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::ValueType;

    #[test]
    fn identical_schemas_pass_trivially() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_accessors(x).unwrap();
        let before = s.clone();
        // Trivial "derivation": derived type = A itself, projection = {x},
        // applicable = both accessors.
        let methods: Vec<MethodId> = s.method_ids().collect();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let report = check_invariants(&before, &s, a, &proj, &methods);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.dispatch_tuples_checked > 0);
    }

    #[test]
    fn i2_replay_reports_cache_counters() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        // Two methods per generic function so the replay must consult rank
        // tables (single-method dispatch short-circuits without them).
        s.add_reader(x, a).unwrap();
        s.add_reader(x, b).unwrap();
        s.add_reader(y, a).unwrap();
        s.add_reader(y, b).unwrap();
        let before = s.clone();
        let methods: Vec<MethodId> = s.method_ids().collect();
        let proj: BTreeSet<AttrId> = [x, y].into_iter().collect();
        let report = check_invariants(&before, &s, b, &proj, &methods);
        assert!(report.ok(), "{:?}", report.violations);
        // Each (gf, tuple) pair is a fresh dispatch entry, but the second
        // generic function's replay reuses the rank tables the first one
        // built — the cache counters must show that.
        assert!(report.dispatch_cache.dispatch_misses > 0);
        assert!(report.dispatch_cache.cpl_hits > 0);
    }

    #[test]
    fn state_change_detected() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let before = s.clone();
        // Maliciously move x down to B: A loses state.
        s.move_attr(x, b).unwrap();
        let report = check_invariants(&before, &s, b, &BTreeSet::new(), &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StateChanged { ty, .. } if *ty == a)));
    }

    #[test]
    fn subtype_change_detected() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let before = s.clone();
        s.remove_super_edge(b, a);
        let report = check_invariants(&before, &s, b, &BTreeSet::new(), &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SubtypeChanged { .. })));
    }

    #[test]
    fn derived_state_mismatch_detected() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let before = s.clone();
        // Claim projection {} but the "derived type" A still has x.
        let report = check_invariants(&before, &s, a, &BTreeSet::new(), &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DerivedStateWrong { extra, .. } if extra == &vec![x])));
    }

    #[test]
    fn derived_behavior_mismatch_detected() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (_, m) = s.add_reader(x, a).unwrap();
        let before = s.clone();
        // Claim nothing is applicable, but the reader applies to A.
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let report = check_invariants(&before, &s, a, &proj, &[]);
        assert!(report.violations.iter().any(
            |v| matches!(v, Violation::DerivedBehaviorWrong { extra, .. } if extra == &vec![m])
        ));
    }
}
