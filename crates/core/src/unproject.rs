//! Dropping a derived view: the inverse of [`crate::project`].
//!
//! Views are dynamic — the paper's premise is that they are derived "as a
//! result of defining algebraic views over object types" — so a complete
//! system must also *remove* them. Because a [`crate::Derivation`] records
//! everything the pipeline did (attribute moves, signature rewrites,
//! body re-typings, created surrogates), the derivation is invertible:
//!
//! 1. restore every rewritten method signature, result type and local
//!    variable declaration;
//! 2. move every relocated attribute back to its original owner;
//! 3. unlink every surrogate (each source lost exactly one edge — the one
//!    to its surrogate — and original-to-original edges were never
//!    touched) and retire it.
//!
//! The result is *observably identical* to the pre-projection schema:
//! same hierarchy rendering, same method signatures and bodies, same
//! dispatch. (Arena slots of retired surrogates remain allocated; ids of
//! original entities are untouched.)

use td_model::{Schema, ValueType};

use crate::error::{CoreError, Result};
use crate::projection::Derivation;

/// Removes the view created by `derivation`, restoring the schema.
///
/// Fails (without modifying anything) if later derivations still depend
/// on this one — i.e. some surrogate of this derivation has a subtype
/// edge from a type this derivation did not create (a stacked view must
/// be dropped first, inner-most last).
pub fn unproject(schema: &mut Schema, derivation: &Derivation) -> Result<()> {
    let mut surrogates: Vec<_> = derivation
        .factor_surrogates
        .iter()
        .chain(derivation.augment_surrogates.iter())
        .copied()
        .collect();

    // -- pre-flight: every surrogate's subtypes are either its source or
    //    another surrogate of this derivation.
    for &(source, hat) in &surrogates {
        if !schema.is_live(hat) {
            return Err(CoreError::Model(td_model::ModelError::BadTypeId(hat)));
        }
        for sub in schema.direct_subtypes(hat) {
            let internal = sub == source || surrogates.iter().any(|&(_, h)| h == sub);
            if !internal {
                return Err(CoreError::Model(td_model::ModelError::Invalid(format!(
                    "cannot drop view {}: type {} still inherits from surrogate {}",
                    schema.type_name(derivation.derived),
                    schema.type_name(sub),
                    schema.type_name(hat)
                ))));
            }
        }
        // A later derivation may also have factored the surrogate itself.
        if schema
            .type_(hat)
            .super_ids()
            .any(|s| schema.type_(s).surrogate_source() == Some(hat))
        {
            return Err(CoreError::Model(td_model::ModelError::Invalid(format!(
                "cannot drop view {}: surrogate {} was itself factored by a later derivation",
                schema.type_name(derivation.derived),
                schema.type_name(hat)
            ))));
        }
    }

    // -- 1. restore method signatures, result types, local declarations.
    for (m, old, _) in &derivation.signature_changes {
        schema.method_mut(*m).specializers = old.clone();
    }
    for &(m, old, _) in &derivation.retypes.results {
        schema.method_mut(m).result = Some(ValueType::Object(old));
    }
    for &(m, var, old, _) in &derivation.retypes.locals {
        if let Some(body) = schema.method_mut(m).body_mut() {
            body.locals[var.index()].ty = ValueType::Object(old);
        }
    }

    // -- 2. move attributes home.
    for &(attr, from, _to) in derivation.moved_attrs.iter().rev() {
        schema.move_attr(attr, from)?;
    }

    // -- 3. unlink and retire surrogates (children before parents so the
    //    retire pre-conditions hold; a reverse topological order works).
    surrogates.sort_by_key(|&(_, hat)| std::cmp::Reverse(schema.ancestors(hat).len()));
    for &(source, hat) in &surrogates {
        schema.remove_super_edge(source, hat);
        for sup in schema.type_(hat).super_ids().collect::<Vec<_>>() {
            schema.remove_super_edge(hat, sup);
        }
        for sub in schema.direct_subtypes(hat) {
            schema.remove_super_edge(sub, hat);
        }
        schema.retire_type(hat)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{project_named, ProjectionOptions};
    use td_workload::figures;

    #[test]
    fn unproject_restores_fig3_exactly() {
        let mut s = figures::fig3_with_z1();
        let before_h = s.render_hierarchy();
        let before_m = s.render_methods();
        let d = project_named(
            &mut s,
            "A",
            figures::FIG4_PROJECTION,
            &ProjectionOptions::default(),
        )
        .unwrap();
        assert_ne!(s.render_hierarchy(), before_h);

        unproject(&mut s, &d).unwrap();
        assert_eq!(s.render_hierarchy(), before_h);
        assert_eq!(s.render_methods(), before_m);
        s.validate().unwrap();
        // z1's body declarations restored too.
        let z1 = s.method_by_label("z1").unwrap();
        let g = s.type_id("G").unwrap();
        let body = s.method(z1).body().unwrap();
        assert_eq!(body.locals[0].ty, ValueType::Object(g));
        assert_eq!(s.method(z1).result, Some(ValueType::Object(g)));
    }

    #[test]
    fn unproject_then_reproject_is_stable() {
        let mut s = figures::fig1();
        let d1 =
            project_named(&mut s, "Employee", &["SSN"], &ProjectionOptions::default()).unwrap();
        unproject(&mut s, &d1).unwrap();
        let d2 =
            project_named(&mut s, "Employee", &["SSN"], &ProjectionOptions::default()).unwrap();
        assert!(d2.invariants_ok());
        // The name ^Employee was freed by the drop and is reused.
        assert_eq!(s.type_name(d2.derived), "^Employee");
    }

    #[test]
    fn stacked_views_must_be_dropped_inner_first() {
        let mut s = figures::fig1();
        let d1 = project_named(
            &mut s,
            "Employee",
            &["SSN", "date_of_birth"],
            &ProjectionOptions::default(),
        )
        .unwrap();
        let inner_name = s.type_name(d1.derived).to_string();
        let d2 =
            project_named(&mut s, &inner_name, &["SSN"], &ProjectionOptions::default()).unwrap();

        // Dropping the base view while the stacked one exists must fail…
        let err = unproject(&mut s, &d1).unwrap_err();
        assert!(err.to_string().contains("cannot drop view"));
        s.validate().unwrap();

        // …but inner-most-last works.
        unproject(&mut s, &d2).unwrap();
        unproject(&mut s, &d1).unwrap();
        s.validate().unwrap();
        assert!(s.type_id("^Employee").is_err());
        assert_eq!(s.render_hierarchy(), figures::fig1().render_hierarchy());
    }

    #[test]
    fn double_drop_fails_cleanly() {
        let mut s = figures::fig1();
        let d = project_named(&mut s, "Employee", &["SSN"], &ProjectionOptions::default()).unwrap();
        unproject(&mut s, &d).unwrap();
        let err = unproject(&mut s, &d).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn unproject_restores_dispatch_observably() {
        use td_model::CallArg;
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let age = s.gf_id("age").unwrap();
        let before = s.most_specific(age, &[CallArg::Object(employee)]).unwrap();
        let d = project_named(
            &mut s,
            "Employee",
            &["SSN", "date_of_birth", "pay_rate"],
            &ProjectionOptions::default(),
        )
        .unwrap();
        unproject(&mut s, &d).unwrap();
        let after = s.most_specific(age, &[CallArg::Object(employee)]).unwrap();
        assert_eq!(before, after);
    }
}
