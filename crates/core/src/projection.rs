//! The end-to-end projection operator: `Π_{a,b,…}(T)` over a schema.
//!
//! [`project`] orchestrates the paper's pipeline:
//!
//! 1. infer applicable methods (`IsApplicable`, §4.1);
//! 2. factor state into surrogates (`FactorState`, §5.1);
//! 3. collect the §6.4 definition-use edges and compute `Y`/`Z`,
//!    extending `Z` with the coverage types (see DESIGN.md, deviation 1);
//! 4. augment the hierarchy for the `Z` types (`Augment`, §6.4) —
//!    *before* signature factoring, so every supertype-of-source
//!    specializer has a surrogate to move to;
//! 5. factor applicable method signatures (`FactorMethods`, §6.1);
//! 6. re-type bodies and result types (§6.3);
//! 7. optionally check every preservation invariant against a
//!    pre-derivation snapshot.
//!
//! The returned [`Derivation`] records everything the pipeline did, enough
//! to reproduce the paper's Examples 1–4 verbatim.

use std::collections::{BTreeSet, HashMap};
use std::time::Duration;
use td_model::{AnalysisPrecision, AttrId, MethodId, Schema, TypeId};

use crate::applicability::{
    compute_applicability, compute_applicability_indexed_at, Applicability,
};
use crate::augment::augment;
use crate::body_rewrite::{collect_flow_edges, compute_y_and_z, retype_bodies, RetypeOutcome};
use crate::error::{CoreError, Result};
use crate::factor_methods::{converted_positions, factor_methods, SignatureChange};
use crate::factor_state::{factor_state, FactorStateOutcome};
use crate::invariants::{check_invariants, InvariantReport};
use crate::oracle::compute_applicability_fixpoint;
use crate::surrogates::{SurrogateKind, SurrogateRegistry};

/// Which `IsApplicable` implementation stage 1 of [`project`] runs. All
/// three classify identically (the differential property suite proves it
/// on randomized schemas); they differ only in cost profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The condensation index (`td_model::appindex`) with pass-based
    /// fallback for the §4.1 case-2/disjunctive residue — the default:
    /// amortized O(V+E) per source, bitset tests per projection.
    #[default]
    Indexed,
    /// The paper's pass-based optimistic-cycle stack algorithm, exactly
    /// as §4.1 describes it (plus the retraction repair in DESIGN.md).
    Stack,
    /// The greatest-fixpoint reference oracle — the slowest, kept as an
    /// independent ground truth and an escape hatch.
    Fixpoint,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Engine, String> {
        match s {
            "indexed" => Ok(Engine::Indexed),
            "stack" => Ok(Engine::Stack),
            "fixpoint" => Ok(Engine::Fixpoint),
            other => Err(format!(
                "unknown engine '{other}' (expected indexed, stack or fixpoint)"
            )),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Indexed => "indexed",
            Engine::Stack => "stack",
            Engine::Fixpoint => "fixpoint",
        })
    }
}

/// Options controlling a projection derivation.
#[derive(Debug, Clone)]
pub struct ProjectionOptions {
    /// Record the `IsApplicable` trace (costs allocations; used by the
    /// reproduction harness).
    pub record_trace: bool,
    /// Snapshot the schema and verify invariants I1–I5 after deriving.
    pub check_invariants: bool,
    /// Permit an empty projection list (a view with no attributes).
    pub allow_empty: bool,
    /// The applicability engine for stage 1 (default: [`Engine::Indexed`]).
    pub engine: Engine,
    /// The applicability-index precision the [`Engine::Indexed`] engine
    /// consults (default: [`AnalysisPrecision::Syntactic`]). `Semantic`
    /// uses `td-analyze`'s interprocedural footprints to demote fallback
    /// methods; the classification itself is provably identical, so this
    /// is purely a performance knob. Ignored by the other engines.
    pub precision: AnalysisPrecision,
}

impl Default for ProjectionOptions {
    fn default() -> Self {
        ProjectionOptions {
            record_trace: false,
            check_invariants: true,
            allow_empty: false,
            engine: Engine::default(),
            precision: AnalysisPrecision::default(),
        }
    }
}

impl ProjectionOptions {
    /// Options for benchmarking: no trace, no invariant sweep.
    pub fn fast() -> Self {
        ProjectionOptions {
            check_invariants: false,
            ..ProjectionOptions::default()
        }
    }
}

/// Wall-clock cost of each pipeline stage of one [`project`] run.
///
/// Always recorded (seven clock reads per derivation — noise next to any
/// stage). Each slot is the *same measurement* as the `project`-category
/// stage span `td_telemetry` records when tracing is enabled: [`project`]
/// reads the clock once per stage boundary and feeds both, so timings and
/// trace can never disagree. The batch engine (`td-driver`) sums these
/// across requests to show where a fleet of derivations spends its time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// `IsApplicable` (§4.1).
    pub applicability: Duration,
    /// `FactorState` (§5.1).
    pub factor_state: Duration,
    /// Def-use collection and `Y`/`Z` computation (§6.4).
    pub flow_analysis: Duration,
    /// `Augment` (§6.4).
    pub augment: Duration,
    /// `FactorMethods` (§6.1).
    pub factor_methods: Duration,
    /// Body and result re-typing (§6.3).
    pub retype: Duration,
    /// Invariant checking I1–I5 (zero when disabled).
    pub invariants: Duration,
}

impl StageTimings {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.applicability
            + self.factor_state
            + self.flow_analysis
            + self.augment
            + self.factor_methods
            + self.retype
            + self.invariants
    }

    /// Adds another run's timings stage by stage (batch rollups).
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.applicability += other.applicability;
        self.factor_state += other.factor_state;
        self.flow_analysis += other.flow_analysis;
        self.augment += other.augment;
        self.factor_methods += other.factor_methods;
        self.retype += other.retype;
        self.invariants += other.invariants;
    }
}

/// Formats a duration with an adaptively chosen unit (µs below a
/// millisecond, ms below a second, whole seconds above).
fn fmt_adaptive(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

impl std::fmt::Display for StageTimings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total();
        let pct = |d: Duration| {
            if total.is_zero() {
                0.0
            } else {
                d.as_secs_f64() / total.as_secs_f64() * 100.0
            }
        };
        let stages = [
            ("applicability", self.applicability),
            ("factor-state", self.factor_state),
            ("flow", self.flow_analysis),
            ("augment", self.augment),
            ("factor-methods", self.factor_methods),
            ("retype", self.retype),
            ("invariants", self.invariants),
        ];
        for (name, d) in stages {
            write!(f, "{name} {} ({:.0}%), ", fmt_adaptive(d), pct(d))?;
        }
        write!(f, "total {}", fmt_adaptive(total))
    }
}

/// Everything a projection derivation produced.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// The projection's source type.
    pub source: TypeId,
    /// The derived type `T̂` (the surrogate of the source).
    pub derived: TypeId,
    /// The projection list.
    pub projection: BTreeSet<AttrId>,
    /// The applicability computation (universe, applicable, trace, …).
    pub applicability: Applicability,
    /// `(source, surrogate)` pairs created by `FactorState`, sorted.
    pub factor_surrogates: Vec<(TypeId, TypeId)>,
    /// `(source, surrogate)` pairs created by `Augment`, in creation order.
    pub augment_surrogates: Vec<(TypeId, TypeId)>,
    /// Attribute moves `(attr, from, to)` in execution order.
    pub moved_attrs: Vec<(AttrId, TypeId, TypeId)>,
    /// Method-signature rewrites.
    pub signature_changes: Vec<SignatureChange>,
    /// The §6.4 `Z` set.
    pub z_types: BTreeSet<TypeId>,
    /// Local/result re-typings (§6.3).
    pub retypes: RetypeOutcome,
    /// Invariant report (`None` when checking was disabled).
    pub invariants: Option<InvariantReport>,
    /// Wall-clock cost of each pipeline stage.
    pub stage_times: StageTimings,
}

impl Derivation {
    /// Methods inferred applicable to the derived type.
    pub fn applicable(&self) -> &[MethodId] {
        &self.applicability.applicable
    }

    /// Methods inferred not applicable.
    pub fn not_applicable(&self) -> &[MethodId] {
        &self.applicability.not_applicable
    }

    /// True when invariants were checked and all hold.
    pub fn invariants_ok(&self) -> bool {
        self.invariants.as_ref().map(|r| r.ok()).unwrap_or(false)
    }

    /// Human-readable summary of the derivation.
    pub fn summary(&self, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let names = |ms: &[MethodId]| -> String {
            ms.iter()
                .map(|&m| schema.method_label(m).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            out,
            "derived {} = Π_{{{}}}({})",
            schema.type_name(self.derived),
            self.projection
                .iter()
                .map(|&a| schema.attr_name(a).to_string())
                .collect::<Vec<_>>()
                .join(", "),
            schema.type_name(self.source)
        );
        let _ = writeln!(out, "applicable:     {}", names(self.applicable()));
        let _ = writeln!(out, "not applicable: {}", names(self.not_applicable()));
        let _ = writeln!(
            out,
            "surrogates:     {} factored, {} augmented",
            self.factor_surrogates.len(),
            self.augment_surrogates.len()
        );
        if let Some(r) = &self.invariants {
            let _ = writeln!(
                out,
                "invariants:     {} ({} dispatch tuples checked)",
                if r.ok() { "all hold" } else { "VIOLATED" },
                r.dispatch_tuples_checked
            );
        }
        out
    }
}

/// Derives `Π_projection(source)`, mutating `schema` in place per the
/// paper's algorithms, and returns the full derivation record.
pub fn project(
    schema: &mut Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    opts: &ProjectionOptions,
) -> Result<Derivation> {
    // -- input validation ---------------------------------------------------
    if projection.is_empty() && !opts.allow_empty {
        return Err(CoreError::EmptyProjection(source));
    }
    for &a in projection {
        if !schema.attr_available_at(a, source) {
            return Err(CoreError::AttrNotAvailable { attr: a, source });
        }
    }

    let before = if opts.check_invariants {
        Some(schema.clone())
    } else {
        None
    };

    // One clock read per stage boundary feeds BOTH the `StageTimings`
    // slot and (when telemetry is on) the emitted stage span, so the two
    // views of a derivation's cost are the same measurement, not two.
    let project_start = td_telemetry::now_ns();
    let mut stage_times = StageTimings::default();
    let mut stage_clock = project_start;
    let mut stage_done = |slot: &mut Duration, stage: &'static str| {
        let now = td_telemetry::now_ns();
        let dur = now.saturating_sub(stage_clock);
        *slot = Duration::from_nanos(dur);
        td_telemetry::emit_span("project", stage, stage_clock, dur, Vec::new());
        stage_clock = now;
    };

    // -- 1. behavior inference (§4) ----------------------------------------
    let applicability = match opts.engine {
        Engine::Indexed => compute_applicability_indexed_at(
            schema,
            source,
            projection,
            opts.precision,
            opts.record_trace,
        )?,
        Engine::Stack => compute_applicability(schema, source, projection, opts.record_trace)?,
        Engine::Fixpoint => compute_applicability_fixpoint(schema, source, projection)?,
    };
    stage_done(&mut stage_times.applicability, "applicability");

    // -- 2. state factorization (§5) ----------------------------------------
    let mut registry = SurrogateRegistry::new();
    let mut fs_outcome = FactorStateOutcome::default();
    let derived = factor_state(schema, &mut registry, projection, source, &mut fs_outcome)?;
    stage_done(&mut stage_times.factor_state, "factor_state");

    // -- 3. definition-use analysis (§6.4), before signatures change --------
    let edges = collect_flow_edges(schema, &applicability.applicable);
    let x: BTreeSet<TypeId> = registry
        .pairs(SurrogateKind::Factor)
        .into_iter()
        .map(|(src, _)| src)
        .collect();
    // Coverage extension: an applicable method may specialize on a
    // supertype of the source that carries no projected state, so
    // `FactorState` gave it no surrogate. The derived type is a subtype
    // only of surrogates, so without one the rewritten signature would
    // silently drop the method (an I4 violation the paper's examples
    // never hit). Such types are converted like `X` members — they feed
    // the def-use analysis as value sources and join the `Z` set handed
    // to `Augment`, so the surrogate lattice mirrors every
    // assignment-relevant subtype path (`^V ≤ ^U` whenever a `V`-typed
    // value flows into a `U`-typed slot).
    let mut coverage: BTreeSet<TypeId> = BTreeSet::new();
    for &m in &applicability.applicable {
        for (_, ti) in schema.method(m).type_specializers() {
            if schema.is_subtype(source, ti) && registry.surrogate(ti).is_none() {
                coverage.insert(ti);
            }
        }
    }
    let x_converted: BTreeSet<TypeId> = x.union(&coverage).copied().collect();
    let (_y, mut z) = compute_y_and_z(&edges, &x_converted);
    z.extend(coverage.iter().copied());
    stage_done(&mut stage_times.flow_analysis, "flow_analysis");

    // -- 4. hierarchy augmentation (§6.4) ------------------------------------
    let augment_created = augment(schema, &mut registry, source, &z)?;
    stage_done(&mut stage_times.augment, "augment");

    // -- 5. method factorization (§6.1) --------------------------------------
    let signature_changes = factor_methods(schema, &registry, source, &applicability.applicable);
    let mut converted: HashMap<MethodId, Vec<usize>> = HashMap::new();
    for (m, old, _) in &signature_changes {
        converted.insert(*m, converted_positions(schema, &registry, source, old));
    }
    stage_done(&mut stage_times.factor_methods, "factor_methods");

    // -- 6. body re-typing (§6.3) --------------------------------------------
    let retypes = retype_bodies(schema, &registry, &converted)?;
    stage_done(&mut stage_times.retype, "retype");

    // -- 7. invariants --------------------------------------------------------
    let invariants = before
        .map(|b| check_invariants(&b, schema, derived, projection, &applicability.applicable));
    if invariants.is_some() {
        stage_done(&mut stage_times.invariants, "invariants");
    }

    if td_telemetry::enabled() {
        td_telemetry::emit_span(
            "project",
            format!("project/{}", schema.type_name(source)),
            project_start,
            td_telemetry::now_ns().saturating_sub(project_start),
            vec![
                ("derived", schema.type_name(derived).into()),
                ("applicable", applicability.applicable.len().into()),
                ("engine", opts.engine.to_string().into()),
            ],
        );
    }

    Ok(Derivation {
        source,
        derived,
        projection: projection.clone(),
        applicability,
        factor_surrogates: registry.pairs(SurrogateKind::Factor),
        augment_surrogates: augment_created,
        moved_attrs: fs_outcome.moved_attrs,
        signature_changes,
        z_types: z,
        retypes,
        invariants,
        stage_times,
    })
}

/// Name-based convenience wrapper over [`project`].
pub fn project_named(
    schema: &mut Schema,
    source: &str,
    attrs: &[&str],
    opts: &ProjectionOptions,
) -> Result<Derivation> {
    let source = schema.type_id(source)?;
    let projection: BTreeSet<AttrId> = attrs
        .iter()
        .map(|n| schema.attr_id(n))
        .collect::<td_model::Result<_>>()?;
    project(schema, source, &projection, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{BodyBuilder, Expr, MethodKind, Specializer, ValueType};

    /// The full Figure 1 schema including the three named methods.
    fn fig1_schema() -> Schema {
        let mut s = Schema::new();
        let person = s.add_type("Person", &[]).unwrap();
        let employee = s.add_type("Employee", &[person]).unwrap();
        for (n, t, owner) in [
            ("SSN", ValueType::INT, person),
            ("name", ValueType::STR, person),
            ("date_of_birth", ValueType::INT, person),
            ("pay_rate", ValueType::FLOAT, employee),
            ("hrs_worked", ValueType::FLOAT, employee),
        ] {
            let a = s.add_attr(n, t, owner).unwrap();
            s.add_accessors(a).unwrap();
        }
        let get_dob = s.gf_id("get_date_of_birth").unwrap();
        let get_pay = s.gf_id("get_pay_rate").unwrap();
        let get_hrs = s.gf_id("get_hrs_worked").unwrap();

        // age(Person) = {…get_date_of_birth(Person)…}
        let age = s.add_gf("age", 1, Some(ValueType::INT)).unwrap();
        let mut bb = BodyBuilder::new();
        bb.ret(Expr::call(get_dob, vec![Expr::Param(0)]));
        s.add_method(
            age,
            "age",
            vec![Specializer::Type(person)],
            MethodKind::General(bb.finish()),
            Some(ValueType::INT),
        )
        .unwrap();

        // income(Employee) = {…get_pay_rate, get_hrs_worked…}
        let income = s.add_gf("income", 1, Some(ValueType::FLOAT)).unwrap();
        let mut bb = BodyBuilder::new();
        bb.ret(Expr::binop(
            td_model::BinOp::Mul,
            Expr::call(get_pay, vec![Expr::Param(0)]),
            Expr::call(get_hrs, vec![Expr::Param(0)]),
        ));
        s.add_method(
            income,
            "income",
            vec![Specializer::Type(employee)],
            MethodKind::General(bb.finish()),
            Some(ValueType::FLOAT),
        )
        .unwrap();

        // promote(Employee) = {…get_date_of_birth, get_pay_rate…}
        let promote = s.add_gf("promote", 1, Some(ValueType::BOOL)).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_dob, vec![Expr::Param(0)]);
        bb.call(get_pay, vec![Expr::Param(0)]);
        s.add_method(
            promote,
            "promote",
            vec![Specializer::Type(employee)],
            MethodKind::General(bb.finish()),
            Some(ValueType::BOOL),
        )
        .unwrap();
        s.validate().unwrap();
        s
    }

    #[test]
    fn fig2_full_pipeline() {
        let mut s = fig1_schema();
        let d = project_named(
            &mut s,
            "Employee",
            &["SSN", "date_of_birth", "pay_rate"],
            &ProjectionOptions {
                record_trace: true,
                ..Default::default()
            },
        )
        .unwrap();

        // §3.1: age and promote apply; income does not.
        let labels = |ms: &[MethodId]| -> Vec<String> {
            ms.iter().map(|&m| s.method_label(m).to_string()).collect()
        };
        let app = labels(d.applicable());
        assert!(app.contains(&"age".to_string()));
        assert!(app.contains(&"promote".to_string()));
        assert!(!app.contains(&"income".to_string()));
        assert!(labels(d.not_applicable()).contains(&"income".to_string()));

        // Refactored signatures: age(^Person), promote(^Employee).
        let age = s.method_by_label("age").unwrap();
        let p_hat = s.type_id("^Person").unwrap();
        let e_hat = s.type_id("^Employee").unwrap();
        assert_eq!(s.method(age).specializers, vec![Specializer::Type(p_hat)]);
        let promote = s.method_by_label("promote").unwrap();
        assert_eq!(
            s.method(promote).specializers,
            vec![Specializer::Type(e_hat)]
        );
        // income keeps its original signature.
        let income = s.method_by_label("income").unwrap();
        let employee = s.type_id("Employee").unwrap();
        assert_eq!(
            s.method(income).specializers,
            vec![Specializer::Type(employee)]
        );

        assert_eq!(d.derived, e_hat);
        assert!(d.z_types.is_empty());
        assert!(d.augment_surrogates.is_empty());
        assert!(d.invariants_ok(), "{:#?}", d.invariants);
        s.validate().unwrap();
    }

    #[test]
    fn rejects_unavailable_attr() {
        let mut s = fig1_schema();
        let err = project_named(
            &mut s,
            "Person",
            &["pay_rate"],
            &ProjectionOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::AttrNotAvailable { .. }));
    }

    #[test]
    fn rejects_empty_projection_by_default() {
        let mut s = fig1_schema();
        let employee = s.type_id("Employee").unwrap();
        let err = project(
            &mut s,
            employee,
            &BTreeSet::new(),
            &ProjectionOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::EmptyProjection(_)));
        // …but allowed when opted in.
        let d = project(
            &mut s,
            employee,
            &BTreeSet::new(),
            &ProjectionOptions {
                allow_empty: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(s.cumulative_attrs(d.derived).is_empty());
        assert!(d.invariants_ok());
    }

    #[test]
    fn projection_of_everything_keeps_all_methods() {
        let mut s = fig1_schema();
        let d = project_named(
            &mut s,
            "Employee",
            &["SSN", "name", "date_of_birth", "pay_rate", "hrs_worked"],
            &ProjectionOptions::default(),
        )
        .unwrap();
        // Every method applicable to Employee survives a full projection.
        assert_eq!(d.not_applicable(), &[]);
        assert_eq!(d.applicable().len(), d.applicability.universe.len());
        assert!(d.invariants_ok(), "{:#?}", d.invariants);
    }

    #[test]
    fn stage_timings_are_recorded() {
        let mut s = fig1_schema();
        let d = project_named(
            &mut s,
            "Employee",
            &["SSN", "date_of_birth", "pay_rate"],
            &ProjectionOptions::default(),
        )
        .unwrap();
        assert!(d.stage_times.total() > Duration::ZERO);
        assert!(d.stage_times.invariants > Duration::ZERO);
        let mut sum = StageTimings::default();
        sum.accumulate(&d.stage_times);
        sum.accumulate(&d.stage_times);
        assert_eq!(sum.total(), d.stage_times.total() * 2);
        assert!(d.stage_times.to_string().contains("applicability"));

        // With checking disabled the invariants stage costs nothing.
        let mut s = fig1_schema();
        let d = project_named(
            &mut s,
            "Employee",
            &["SSN", "date_of_birth", "pay_rate"],
            &ProjectionOptions::fast(),
        )
        .unwrap();
        assert_eq!(d.stage_times.invariants, Duration::ZERO);
    }

    #[test]
    fn stage_timings_display_adapts_units_and_shows_percentages() {
        let t = StageTimings {
            applicability: Duration::from_micros(500),
            factor_state: Duration::from_millis(1),
            flow_analysis: Duration::from_millis(499),
            augment: Duration::from_secs(1),
            ..StageTimings::default()
        };
        let text = t.to_string();
        assert!(text.contains("applicability 500.0µs (0%)"), "{text}");
        assert!(text.contains("factor-state 1.00ms (0%)"), "{text}");
        assert!(text.contains("flow 499.00ms (33%)"), "{text}");
        assert!(text.contains("augment 1.00s (67%)"), "{text}");
        assert!(text.contains("retype 0.0µs (0%)"), "{text}");
        assert!(text.ends_with("total 1.50s"), "{text}");
        // A zero total never divides by zero.
        let zero = StageTimings::default().to_string();
        assert!(zero.contains("applicability 0.0µs (0%)"), "{zero}");
        assert!(zero.ends_with("total 0.0µs"), "{zero}");
    }

    #[test]
    fn summary_mentions_key_facts() {
        let mut s = fig1_schema();
        let d = project_named(&mut s, "Employee", &["SSN"], &ProjectionOptions::default()).unwrap();
        let text = d.summary(&s);
        assert!(text.contains("^Employee"));
        assert!(text.contains("applicable"));
        assert!(text.contains("all hold"));
    }

    #[test]
    fn engine_parses_and_displays() {
        for (name, engine) in [
            ("indexed", Engine::Indexed),
            ("stack", Engine::Stack),
            ("fixpoint", Engine::Fixpoint),
        ] {
            assert_eq!(name.parse::<Engine>().unwrap(), engine);
            assert_eq!(engine.to_string(), name);
        }
        assert!("turbo".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Indexed);
    }

    #[test]
    fn all_engines_derive_the_same_view() {
        // Project Π_{SSN,date_of_birth,pay_rate}(Employee) with each
        // engine on a fresh copy of fig. 1; the derived views must keep
        // exactly the same methods and pass the invariant sweep.
        let mut reference: Option<std::collections::BTreeSet<String>> = None;
        for engine in [Engine::Indexed, Engine::Stack, Engine::Fixpoint] {
            let mut s = fig1_schema();
            let opts = ProjectionOptions {
                engine,
                ..ProjectionOptions::default()
            };
            let d = project_named(
                &mut s,
                "Employee",
                &["SSN", "date_of_birth", "pay_rate"],
                &opts,
            )
            .unwrap();
            assert!(d.invariants_ok(), "{engine}: invariants");
            let labels: std::collections::BTreeSet<String> = d
                .applicability
                .applicable
                .iter()
                .map(|&m| s.method_label(m).to_string())
                .collect();
            match &reference {
                None => reference = Some(labels),
                Some(r) => assert_eq!(&labels, r, "{engine} disagrees"),
            }
        }
    }
}
