//! # td-core — type derivation using the projection operation
//!
//! A faithful implementation of Agrawal & DeMichiel, *"Type Derivation
//! Using the Projection Operation"* (Information Systems 19(1), 1994):
//! deriving new object-oriented types from existing ones with the
//! relational projection operator, inferring which methods remain
//! applicable to the derived type, and refactoring the type hierarchy so
//! that existing types keep exactly their original state and behavior.
//!
//! The one-call entry point is [`project`] / [`project_named`]:
//!
//! ```
//! use td_model::{Schema, ValueType};
//! use td_core::{project_named, ProjectionOptions};
//!
//! let mut s = Schema::new();
//! let person = s.add_type("Person", &[]).unwrap();
//! let employee = s.add_type("Employee", &[person]).unwrap();
//! for (name, owner) in [("SSN", person), ("name", person), ("pay_rate", employee)] {
//!     let a = s.add_attr(name, ValueType::INT, owner).unwrap();
//!     s.add_accessors(a).unwrap();
//! }
//!
//! // Derive a view of Employee exposing only SSN and pay_rate.
//! let d = project_named(&mut s, "Employee", &["SSN", "pay_rate"],
//!                       &ProjectionOptions::default()).unwrap();
//!
//! // The derived type has exactly the projected state…
//! assert_eq!(s.cumulative_attrs(d.derived).len(), 2);
//! // …the right accessors survive (`name`'s do not)…
//! assert_eq!(d.applicable().len(), 4);
//! // …and every preservation invariant was machine-checked.
//! assert!(d.invariants_ok());
//! ```
//!
//! The pipeline pieces are public for finer-grained use and for the
//! reproduction harness:
//!
//! * [`applicability`] — the paper's `IsApplicable` (§4.1), with traces;
//! * [`oracle`] — an independent greatest-fixpoint reference
//!   implementation used to cross-check it;
//! * [`factor_state`] — `FactorState` (§5.1);
//! * [`factor_methods`] — `FactorMethods` (§6.1);
//! * [`body_rewrite`] — §6.3/§6.4 def-use analysis and re-typing;
//! * [`augment`] — `Augment` (§6.4);
//! * [`invariants`] — machine-checked preservation claims (I1–I5);
//! * [`explain`][mod@explain] — proof trees answering "why did this method (not)
//!   survive?";
//! * [`minimize`] — empty-surrogate reduction (§7 future work);
//! * [`unproject`][mod@unproject] — dropping a view, restoring the schema exactly;
//! * [`catalog`] — named views with dependency-ordered lifecycle.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod applicability;
pub mod augment;
pub mod body_rewrite;
pub mod catalog;
pub mod error;
pub mod explain;
pub mod factor_methods;
pub mod factor_state;
pub mod invariants;
pub mod lint;
pub mod minimize;
pub mod oracle;
pub mod projection;
pub mod surrogates;
pub mod unproject;

pub use applicability::{
    compute_applicability, compute_applicability_indexed, compute_applicability_indexed_at,
    Applicability, TraceEvent,
};
pub use catalog::{CatalogEntry, ViewCatalog};
pub use error::{CoreError, Result};
pub use explain::{explain, Explanation};
pub use invariants::{InvariantReport, Violation};
pub use lint::{lint, optimistic_cycle_ring};
pub use minimize::{minimize_surrogates, MinimizeOutcome};
pub use oracle::{applicability_fixpoint, compute_applicability_fixpoint};
pub use projection::{project, project_named, Derivation, Engine, ProjectionOptions, StageTimings};
pub use surrogates::{SurrogateKind, SurrogateRegistry};
pub use unproject::unproject;
