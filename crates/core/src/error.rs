//! Error type for the derivation algorithms.

use std::fmt;
use td_model::{AttrId, ModelError, TypeId};

/// Errors raised while deriving a type by projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying schema operation failed.
    Model(ModelError),
    /// A projected attribute is not available (locally or by inheritance)
    /// at the projection's source type.
    AttrNotAvailable {
        /// The offending attribute.
        attr: AttrId,
        /// The projection source.
        source: TypeId,
    },
    /// The applicability driver failed to converge (should be impossible;
    /// guards against a bug rather than a user error).
    NonConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// After `Augment`, a type that must be re-typed still has no
    /// surrogate — indicates an inconsistency in the def-use analysis.
    MissingSurrogate(TypeId),
    /// The projection list was empty and the options forbid empty views.
    EmptyProjection(TypeId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "schema error: {e}"),
            CoreError::AttrNotAvailable { attr, source } => {
                write!(
                    f,
                    "attribute {attr} is not available at projection source {source}"
                )
            }
            CoreError::NonConvergence { iterations } => {
                write!(
                    f,
                    "applicability driver did not converge after {iterations} passes"
                )
            }
            CoreError::MissingSurrogate(t) => {
                write!(f, "no surrogate exists for {t} after augmentation")
            }
            CoreError::EmptyProjection(t) => {
                write!(f, "empty projection list over {t}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::AttrNotAvailable {
            attr: AttrId(1),
            source: TypeId(2),
        };
        assert!(e.to_string().contains("a1"));
        let e: CoreError = ModelError::BadTypeId(TypeId(0)).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
