//! `FactorMethods` — relocating applicable behavior onto surrogates (§6.1).
//!
//! Because each surrogate is the highest-precedence direct supertype of
//! its source, a method applicable to `T` "can be treated as if it were a
//! method on `T̂`" — so factoring simply rewrites, in every applicable
//! method's signature, each specializer for which `FactorState` created a
//! surrogate to that surrogate. The method's identity (its [`MethodId`])
//! is preserved, which is what lets the invariant checker prove that
//! dispatch over original types still selects the same methods.
//!
//! The §6.1 pseudocode rewrites only specializers with `FactorState`
//! surrogates, because in the paper's examples every supertype of the
//! source reached by an applicable method carries projected state. In
//! general that is not so: a method may specialize on a supertype `U` of
//! the source with **no** projected attribute at or above it, and leaving
//! `U` in the signature would silently drop the method from the derived
//! type (the derived type is a subtype only of *surrogates*). The
//! projection driver therefore extends the §6.4 `Z` set with such
//! "coverage" types, runs `Augment` first, and this pass rewrites every
//! supertype-of-source specializer to its surrogate — factored or
//! augmented.

use td_model::{MethodId, Schema, Specializer, TypeId};

use crate::surrogates::SurrogateRegistry;

/// One signature rewrite: `(method, old specializers, new specializers)`.
pub type SignatureChange = (MethodId, Vec<Specializer>, Vec<Specializer>);

/// Rewrites the signatures of the applicable methods in place. Every
/// object specializer that is a supertype of `source` and has a surrogate
/// is replaced by that surrogate. Returns the changes (methods whose
/// signatures mention no such type are left untouched and unreported).
pub fn factor_methods(
    schema: &mut Schema,
    registry: &SurrogateRegistry,
    source: TypeId,
    applicable: &[MethodId],
) -> Vec<SignatureChange> {
    let mut changes = Vec::new();
    for &m in applicable {
        let old = schema.method(m).specializers.clone();
        let mut new = old.clone();
        let mut changed = false;
        for spec in &mut new {
            if let Specializer::Type(t) = spec {
                if !schema.is_subtype(source, *t) {
                    continue;
                }
                if let Some(hat) = registry.surrogate(*t) {
                    *spec = Specializer::Type(hat);
                    changed = true;
                }
            }
        }
        if changed {
            schema.method_mut(m).specializers = new.clone();
            changes.push((m, old, new));
        }
    }
    changes
}

/// The argument positions of `old` specializers that were converted to
/// surrogates — the §6.3 "parameters that are to be converted".
pub fn converted_positions(
    schema: &Schema,
    registry: &SurrogateRegistry,
    source: TypeId,
    old: &[Specializer],
) -> Vec<usize> {
    old.iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            Specializer::Type(t)
                if schema.is_subtype(source, *t) && registry.surrogate(*t).is_some() =>
            {
                Some(i)
            }
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogates::SurrogateKind;
    use td_model::{MethodKind, Schema, ValueType};

    #[test]
    fn rewrites_supertype_specializers_with_surrogates() {
        // Source = A; A <= C; U unrelated. f(A, U, C): the A and C
        // positions rewrite, U stays.
        let mut s = Schema::new();
        let c = s.add_type("C", &[]).unwrap();
        let a = s.add_type("A", &[c]).unwrap();
        let u = s.add_type("U", &[]).unwrap();
        let f = s.add_gf("f", 3, None).unwrap();
        let m = s
            .add_method(
                f,
                "f1",
                vec![
                    Specializer::Type(a),
                    Specializer::Type(u),
                    Specializer::Type(c),
                ],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let mut reg = SurrogateRegistry::new();
        let (a_hat, _) = reg.get_or_create(&mut s, a, SurrogateKind::Factor).unwrap();
        let (c_hat, _) = reg.get_or_create(&mut s, c, SurrogateKind::Factor).unwrap();
        // A surrogate for U exists but U is not a supertype of the source,
        // so it must not be rewritten.
        reg.get_or_create(&mut s, u, SurrogateKind::Augment)
            .unwrap();
        let changes = factor_methods(&mut s, &reg, a, &[m]);
        assert_eq!(changes.len(), 1);
        assert_eq!(
            s.method(m).specializers,
            vec![
                Specializer::Type(a_hat),
                Specializer::Type(u),
                Specializer::Type(c_hat)
            ]
        );
        assert_eq!(converted_positions(&s, &reg, a, &changes[0].1), vec![0, 2]);
    }

    #[test]
    fn augment_surrogates_do_rewrite_supertype_specializers() {
        // Coverage case: the specializer is a supertype of the source but
        // carries no projected state, so its surrogate came from Augment —
        // the signature must still move onto it.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let m = s
            .add_method(
                f,
                "f1",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let mut reg = SurrogateRegistry::new();
        let (a_hat, _) = reg
            .get_or_create(&mut s, a, SurrogateKind::Augment)
            .unwrap();
        let changes = factor_methods(&mut s, &reg, a, &[m]);
        assert_eq!(changes.len(), 1);
        assert_eq!(s.method(m).specializers, vec![Specializer::Type(a_hat)]);
    }

    #[test]
    fn prim_specializers_are_preserved() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_accessors(x).unwrap();
        let set_x = s.gf_id("set_x").unwrap();
        let m = s.gf(set_x).methods[0];
        let mut reg = SurrogateRegistry::new();
        let (a_hat, _) = reg.get_or_create(&mut s, a, SurrogateKind::Factor).unwrap();
        // Wire so the accessor stays valid after the move (as FactorState
        // would): A <= ^A and x moved to ^A.
        s.add_super_highest(a, a_hat).unwrap();
        s.move_attr(x, a_hat).unwrap();
        let changes = factor_methods(&mut s, &reg, a, &[m]);
        assert_eq!(changes.len(), 1);
        assert_eq!(s.method(m).specializers[0], Specializer::Type(a_hat));
        assert!(matches!(s.method(m).specializers[1], Specializer::Prim(_)));
        s.validate().unwrap();
    }
}
