//! The static schema & projection-safety analyzer (`td-lint`).
//!
//! The paper's machinery silently makes assumptions that bite at
//! derivation time: multi-method dispatch can be ambiguous (§3), §4's
//! cycle handling is *optimistic*, and §6.4's `Augment` can be forced by
//! assignments deep in method bodies. This pass checks all of that
//! statically — over a [`Schema`] plus an optional projection request —
//! and reports through the structured-diagnostics vocabulary of
//! [`td_model::diag`] (stable `TDL…` codes, severities, provenance
//! spans). The checks:
//!
//! * **TDL001 dispatch ambiguity** — for every generic function, find
//!   argument-type tuples with two maximal applicable methods and no
//!   most-specific winner. Dispatch itself always picks *something* (the
//!   lexicographic argument-order rule), so this is a warning about
//!   confusable schemas, not an error.
//! * **TDL002 precedence conflicts** — inconsistent class precedence
//!   lists (reported by validation) plus surrogate-precedence wiring: a
//!   surrogate that is not a supertype of its source would break the I2
//!   dispatch-preservation invariant.
//! * **TDL003 optimistic-cycle audit** — call rings (nontrivial SCCs of
//!   the PR-3 condensation index) whose applicability verdicts rest on
//!   the §4 optimistic assumption. A note: the fixpoint retracts wrong
//!   guesses, but reviewers deserve to know which verdicts were assumed
//!   before they were checked.
//! * **TDL004 behavior-free projection** — the request would derive a
//!   `T̂` on which no non-accessor method survives; the lint names the
//!   *load-bearing* attributes whose omission orphans the behavior.
//! * **TDL005 Augment hazards** — §6.4 def-use chains where an
//!   assignment in a surviving body forces surrogate creation for types
//!   outside the projection closure, reported before `FactorMethods`
//!   ever runs.
//!
//! Results are cached in the schema's generational `DispatchCache`
//! ([`Schema::cached_lint_report`]) under a [`LintKey`]: the schema-wide
//! part under `None`, each request part under `Some((source,
//! projection))`. Snapshot forks share the cache, so batch workers lint
//! a schema once.

use std::collections::BTreeSet;
use std::sync::Arc;

use td_model::{
    AttrId, CallArg, Diagnostic, GfId, LintCode, LintKey, LintReport, MethodId, Schema, Span,
    Specializer, TypeId,
};

use crate::applicability::compute_applicability_indexed;
use crate::body_rewrite::{collect_flow_edges, compute_y_and_z};

/// Runs the full analyzer: the schema-wide checks (validation, TDL001,
/// TDL002), plus — when a request is given — the projection-safety checks
/// (TDL006 request validation, TDL003, TDL004, TDL005). Never fails:
/// anything that would make the analysis itself impossible is reported as
/// an error-severity diagnostic instead.
pub fn lint(schema: &Schema, request: Option<(TypeId, &BTreeSet<AttrId>)>) -> LintReport {
    let schema_part = cached_or_compute(schema, None, || lint_schema_part(schema));
    let mut report = (*schema_part).clone();
    if let Some((source, projection)) = request {
        let key: LintKey = Some((source, projection.iter().copied().collect()));
        let schema_broken = schema_part.errors() > 0;
        let request_part = cached_or_compute(schema, key, || {
            lint_request_part(schema, source, projection, schema_broken)
        });
        report.extend(&request_part);
    }
    report
}

/// The call ring `method` sits on in `source`'s applicability call graph,
/// if any — the group of methods whose verdicts §4's `IsApplicable`
/// assumes optimistically before checking. Consumed by `tdv explain` to
/// annotate verdicts.
pub fn optimistic_cycle_ring(
    schema: &Schema,
    source: TypeId,
    method: MethodId,
) -> Option<Vec<MethodId>> {
    let index = schema.cached_applicability_index(source).ok()?;
    index
        .cycle_groups()
        .iter()
        .find(|g| g.contains(&method))
        .cloned()
}

fn cached_or_compute(
    schema: &Schema,
    key: LintKey,
    compute: impl FnOnce() -> LintReport,
) -> Arc<LintReport> {
    if let Some(hit) = schema.cached_lint_report(&key) {
        return hit;
    }
    let computed = Arc::new(compute());
    schema.store_lint_report(key, Arc::clone(&computed));
    computed
}

// ---------------------------------------------------------------- schema part

fn lint_schema_part(schema: &Schema) -> LintReport {
    let _span = td_telemetry::span("lint", "schema_part");
    let mut diags = {
        let _s = td_telemetry::span("lint", "validate");
        schema.validate_diagnostics()
    };
    // The deep checks assume a well-formed schema (consistent CPLs, sane
    // bodies); on a broken one the validation errors are the story.
    if diags.is_empty() {
        {
            let _s = td_telemetry::span("lint", "surrogate_wiring");
            check_surrogate_wiring(schema, &mut diags);
        }
        {
            let _s = td_telemetry::span("lint", "dispatch_ambiguity");
            check_dispatch_ambiguity(schema, &mut diags);
        }
    }
    LintReport::new(diags)
}

/// TDL002 (wiring half): every live surrogate must sit above its source
/// in the hierarchy, or factored accessors stop being inherited and the
/// I2 replay breaks.
fn check_surrogate_wiring(schema: &Schema, diags: &mut Vec<Diagnostic>) {
    for t in schema.live_type_ids() {
        let node = schema.type_(t);
        if !node.is_surrogate() {
            continue;
        }
        let Some(source) = node.surrogate_source() else {
            continue;
        };
        if !schema.is_live(source) || schema.is_subtype(source, t) {
            continue;
        }
        let surrogate = schema.type_name(t).to_string();
        let src = schema.type_name(source).to_string();
        diags.push(Diagnostic::new(
            LintCode::PrecedenceConflict,
            format!(
                "surrogate `{surrogate}` is not a supertype of its source `{src}` — \
                 factored behavior would not be inherited (breaks I2)"
            ),
            vec![Span::ty(surrogate), Span::ty(src)],
        ));
    }
}

/// TDL001: for each generic function, look for argument tuples where the
/// applicable set has no pointwise most-specific member. Dispatch's
/// lexicographic rule still picks a winner there, but the pick depends on
/// argument order — the classic multi-method confusability of §3.
fn check_dispatch_ambiguity(schema: &Schema, diags: &mut Vec<Diagnostic>) {
    let live: Vec<TypeId> = schema.live_type_ids().collect();
    let mut seen: BTreeSet<(GfId, Vec<MethodId>)> = BTreeSet::new();
    for g in schema.gf_ids() {
        let methods = schema.gf(g).methods.clone();
        for (i, &m1) in methods.iter().enumerate() {
            for &m2 in &methods[i + 1..] {
                let Some(witness) = unify_pair(schema, &live, m1, m2) else {
                    continue;
                };
                let applicable = schema.applicable_methods(g, &witness);
                if applicable.len() < 2 {
                    continue;
                }
                let mut vectors = Vec::with_capacity(applicable.len());
                let mut ok = true;
                for &m in &applicable {
                    match schema.specificity_vector(m, &witness) {
                        Ok(v) => vectors.push((m, v)),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let has_winner = vectors
                    .iter()
                    .any(|(_, v)| vectors.iter().all(|(_, w)| pointwise_le(v, w)));
                if has_winner {
                    continue;
                }
                // The maximal (undominated) set is what the user must
                // disambiguate between.
                let mut maximal: Vec<MethodId> = vectors
                    .iter()
                    .filter(|(m, v)| {
                        !vectors
                            .iter()
                            .any(|(o, w)| o != m && pointwise_le(w, v) && w != v)
                    })
                    .map(|&(m, _)| m)
                    .collect();
                maximal.sort();
                if !seen.insert((g, maximal.clone())) {
                    continue;
                }
                let gf_name = schema.gf_name(g).to_string();
                let tuple = witness
                    .iter()
                    .map(|a| match a {
                        CallArg::Object(t) => schema.type_name(*t).to_string(),
                        other => format!("{other:?}").to_lowercase(),
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let labels = maximal
                    .iter()
                    .map(|&m| format!("`{}`", schema.method_label(m)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut spans = vec![Span::gf(gf_name.clone())];
                spans.extend(
                    maximal
                        .iter()
                        .map(|&m| Span::method(schema.method_label(m).to_string())),
                );
                diags.push(Diagnostic::new(
                    LintCode::DispatchAmbiguity,
                    format!(
                        "a call `{gf_name}({tuple})` has no most-specific method: \
                         {labels} are mutually incomparable"
                    ),
                    spans,
                ));
            }
        }
    }
}

/// A witness call tuple on which both methods are applicable, if the two
/// signatures are unifiable at all: per position, the most generic common
/// subtype of the two specializers (lowest id breaks ties). `None` when
/// some position has no common instances.
fn unify_pair(
    schema: &Schema,
    live: &[TypeId],
    m1: MethodId,
    m2: MethodId,
) -> Option<Vec<CallArg>> {
    let s1 = &schema.method(m1).specializers;
    let s2 = &schema.method(m2).specializers;
    if s1.len() != s2.len() {
        return None;
    }
    let mut witness = Vec::with_capacity(s1.len());
    for (a, b) in s1.iter().zip(s2.iter()) {
        match (a, b) {
            (Specializer::Prim(p), Specializer::Prim(q)) if p == q => {
                witness.push(CallArg::Prim(*p));
            }
            (Specializer::Type(t1), Specializer::Type(t2)) => {
                let common: Vec<TypeId> = live
                    .iter()
                    .copied()
                    .filter(|&t| schema.is_subtype(t, *t1) && schema.is_subtype(t, *t2))
                    .collect();
                let most_generic = common
                    .iter()
                    .copied()
                    .filter(|&t| {
                        !common
                            .iter()
                            .any(|&u| u != t && schema.is_proper_subtype(t, u))
                    })
                    .min()?;
                witness.push(CallArg::Object(most_generic));
            }
            _ => return None,
        }
    }
    Some(witness)
}

fn pointwise_le(a: &[usize], b: &[usize]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

// --------------------------------------------------------------- request part

fn lint_request_part(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    schema_broken: bool,
) -> LintReport {
    let _span = td_telemetry::span("lint", "request_part");
    let mut diags = Vec::new();
    {
        let _s = td_telemetry::span("lint", "request_validation");
        if !check_request(schema, source, projection, &mut diags) || schema_broken {
            return LintReport::new(diags);
        }
    }
    {
        let _s = td_telemetry::span("lint", "optimistic_cycles");
        check_optimistic_cycles(schema, source, &mut diags);
    }
    let app = match compute_applicability_indexed(schema, source, projection, false) {
        Ok(app) => app,
        Err(e) => {
            diags.push(Diagnostic::new(
                LintCode::InvalidRequest,
                format!("applicability analysis failed: {e}"),
                vec![Span::ty(schema.type_name(source))],
            ));
            return LintReport::new(diags);
        }
    };
    {
        let _s = td_telemetry::span("lint", "behavior_free");
        check_behavior_free(schema, source, projection, &app.applicable, &mut diags);
    }
    {
        let _s = td_telemetry::span("lint", "augment_hazards");
        check_augment_hazards(schema, source, projection, &app.applicable, &mut diags);
    }
    LintReport::new(diags)
}

/// TDL006: the request itself must name a live source and attributes
/// available there — exactly the conditions under which `project` would
/// fail up front. Returns false when the request is unusable.
fn check_request(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    if !schema.is_live(source) {
        diags.push(Diagnostic::new(
            LintCode::InvalidRequest,
            format!("projection source {source} is not a live type"),
            Vec::new(),
        ));
        return false;
    }
    let src = schema.type_name(source).to_string();
    let mut usable = true;
    if projection.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::InvalidRequest,
            format!("empty projection over `{src}` derives no type"),
            vec![Span::ty(src.clone())],
        ));
        usable = false;
    }
    for &a in projection {
        if a.index() >= schema.n_attrs() {
            diags.push(Diagnostic::new(
                LintCode::InvalidRequest,
                format!("projection over `{src}` names unknown attribute {a}"),
                vec![Span::ty(src.clone())],
            ));
            usable = false;
        } else if !schema.attr_available_at(a, source) {
            let attr = schema.attr_name(a).to_string();
            diags.push(Diagnostic::new(
                LintCode::InvalidRequest,
                format!("attribute `{attr}` is not available at type `{src}`"),
                vec![Span::attr(attr), Span::ty(src.clone())],
            ));
            usable = false;
        }
    }
    usable
}

/// TDL003: name every call ring of the source's applicability universe.
fn check_optimistic_cycles(schema: &Schema, source: TypeId, diags: &mut Vec<Diagnostic>) {
    let Ok(index) = schema.cached_applicability_index(source) else {
        return;
    };
    for group in index.cycle_groups() {
        let labels = group
            .iter()
            .map(|&m| format!("`{}`", schema.method_label(m)))
            .collect::<Vec<_>>()
            .join(", ");
        let spans = group
            .iter()
            .map(|&m| Span::method(schema.method_label(m).to_string()))
            .collect();
        diags.push(Diagnostic::new(
            LintCode::OptimisticCycle,
            format!(
                "applicability verdicts for {labels} rest on the §4 optimistic \
                 cycle assumption (call ring)"
            ),
            spans,
        ));
    }
}

/// TDL004: the derived type would keep attributes but no behavior. When
/// that happens, name the load-bearing attributes — the dropped attributes
/// whose reinstatement would revive at least one non-accessor method.
fn check_behavior_free(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    applicable: &[MethodId],
    diags: &mut Vec<Diagnostic>,
) {
    let non_accessor = |ms: &[MethodId]| {
        ms.iter()
            .filter(|&&m| !schema.method(m).is_accessor())
            .count()
    };
    if non_accessor(applicable) > 0 {
        return;
    }
    let universe = schema.methods_applicable_to_type(source);
    if non_accessor(&universe) == 0 {
        // The source never had behavior; nothing was orphaned.
        return;
    }
    // Load-bearing analysis, run lazily only on the warning path: an
    // omitted attribute is load-bearing if adding it back revives some
    // non-accessor method.
    let full = schema.cumulative_attrs(source);
    let mut load_bearing = Vec::new();
    for &a in full.difference(projection) {
        let mut widened = projection.clone();
        widened.insert(a);
        if let Ok(app) = compute_applicability_indexed(schema, source, &widened, false) {
            if non_accessor(&app.applicable) > 0 {
                load_bearing.push(a);
            }
        }
    }
    let src = schema.type_name(source).to_string();
    let mut spans = vec![Span::ty(src.clone())];
    let detail = if load_bearing.is_empty() {
        String::from("no single omitted attribute accounts for it")
    } else {
        let names = load_bearing
            .iter()
            .map(|&a| format!("`{}`", schema.attr_name(a)))
            .collect::<Vec<_>>()
            .join(", ");
        spans.extend(
            load_bearing
                .iter()
                .map(|&a| Span::attr(schema.attr_name(a).to_string())),
        );
        format!("load-bearing attributes missing from the request: {names}")
    };
    diags.push(Diagnostic::new(
        LintCode::BehaviorFreeProjection,
        format!(
            "projection over `{src}` derives a behavior-free type \
             (no non-accessor method survives); {detail}"
        ),
        spans,
    ));
}

/// TDL005: assignments in surviving bodies that will force `Augment`
/// (§6.4) to create surrogates for types outside the projection closure.
///
/// `X` is approximated the way `project` seeds `FactorState`: the types
/// on a supertype path from the source to an owner of a projected
/// attribute. An edge `(target, value)` with `value ∈ X ∪ Y` drags
/// `target` into `Y`; `Z = Y − X` is exactly the §6.4 surrogate set.
fn check_augment_hazards(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    applicable: &[MethodId],
    diags: &mut Vec<Diagnostic>,
) {
    let owners: BTreeSet<TypeId> = projection.iter().map(|&a| schema.attr(a).owner).collect();
    let x: BTreeSet<TypeId> = schema
        .live_type_ids()
        .filter(|&u| {
            schema.is_subtype(source, u) && owners.iter().any(|&o| schema.is_subtype(u, o))
        })
        .collect();
    let edges = collect_flow_edges(schema, applicable);
    let (y, z) = compute_y_and_z(&edges, &x);
    if z.is_empty() {
        return;
    }
    for &m in applicable {
        if schema.method(m).is_accessor() {
            continue;
        }
        let forced: BTreeSet<TypeId> = schema
            .assignment_edges(m)
            .into_iter()
            .filter(|(target, value)| {
                z.contains(target) && (x.contains(value) || y.contains(value))
            })
            .map(|(target, _)| target)
            .collect();
        if forced.is_empty() {
            continue;
        }
        let label = schema.method_label(m).to_string();
        let names = forced
            .iter()
            .map(|&t| format!("`{}`", schema.type_name(t)))
            .collect::<Vec<_>>()
            .join(", ");
        let mut spans = vec![Span::method(label.clone())];
        spans.extend(forced.iter().map(|&t| Span::ty(schema.type_name(t))));
        diags.push(Diagnostic::new(
            LintCode::AugmentHazard,
            format!(
                "assignments in `{label}` force Augment (§6.4) surrogates \
                 for types outside the projection closure: {names}"
            ),
            spans,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{BodyBuilder, Expr, MethodKind, Severity, ValueType};
    use td_workload::figures;

    fn request(s: &Schema, ty: &str, attrs: &[&str]) -> (TypeId, BTreeSet<AttrId>) {
        let source = s.type_id(ty).unwrap();
        let projection = attrs.iter().map(|a| s.attr_id(a).unwrap()).collect();
        (source, projection)
    }

    #[test]
    fn every_pathological_corpus_case_fails_deny_warnings() {
        for case in td_workload::pathological_corpus(9, 0xBAD) {
            let report = lint(&case.schema, case.request.as_ref().map(|(t, a)| (*t, a)));
            assert!(
                report.fails(true),
                "{} case slipped past the lints:\n{}",
                case.name,
                report.render_text()
            );
            // Only the ill-formed diamonds are hard errors; the rest are
            // warnings a plain `lint` run tolerates.
            assert_eq!(report.fails(false), case.name == "diamond");
        }
    }

    #[test]
    fn fig3_schema_part_is_clean() {
        let s = figures::fig3_with_z1();
        let report = lint(&s, None);
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn fig3_request_reports_ring_and_augment_notes_only() {
        let s = figures::fig3_with_z1();
        let (source, projection) = request(&s, "A", figures::FIG4_PROJECTION);
        let report = lint(&s, Some((source, &projection)));
        assert_eq!(report.errors(), 0, "{}", report.render_text());
        assert_eq!(report.warnings(), 0, "{}", report.render_text());
        assert!(report.notes() >= 2, "{}", report.render_text());
        // The x1 <-> y1 call ring is audited…
        let cycle = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::OptimisticCycle)
            .expect("cycle note");
        assert!(cycle.message.contains("x1") && cycle.message.contains("y1"));
        // …and z1's assignments force exactly the Figure 5 sources.
        let hazard = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::AugmentHazard)
            .expect("augment note");
        assert!(hazard.message.contains("z1"), "{}", hazard.message);
        for t in figures::FIG5_AUGMENT_SOURCES {
            assert!(hazard.message.contains(t), "{}: {t}", hazard.message);
        }
        // Severity policy: notes never fail --deny warnings.
        assert!(!report.fails(true));
    }

    #[test]
    fn fig3_without_z1_has_no_augment_note() {
        let s = figures::fig3();
        let (source, projection) = request(&s, "A", figures::FIG4_PROJECTION);
        let report = lint(&s, Some((source, &projection)));
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::AugmentHazard));
    }

    #[test]
    fn explain_helper_finds_the_ring() {
        let s = figures::fig3();
        let source = s.type_id("A").unwrap();
        let x1 = s.method_by_label("x1").unwrap();
        let y1 = s.method_by_label("y1").unwrap();
        let v1 = s.method_by_label("v1").unwrap();
        let ring = optimistic_cycle_ring(&s, source, x1).expect("x1 is on a ring");
        assert!(ring.contains(&x1) && ring.contains(&y1));
        assert!(optimistic_cycle_ring(&s, source, v1).is_none());
    }

    /// Regression for the per-diagnostic ring re-derivation: the rings
    /// are memoized on the cached index, so asking once per method (the
    /// explain loop's shape) costs one index build total, and repeated
    /// `cycle_groups` calls return the same allocation.
    #[test]
    fn cycle_rings_are_derived_once_per_source() {
        let s = figures::fig3();
        let source = s.type_id("A").unwrap();
        let index = s.cached_applicability_index(source).unwrap();
        let first = index.cycle_groups();
        let again = index.cycle_groups();
        assert!(std::ptr::eq(first, again), "rings must be memoized");
        let misses_before = s.dispatch_cache_stats().index_misses;
        let methods: Vec<_> = s.method_ids().collect();
        let findings = methods
            .iter()
            .filter(|&&m| optimistic_cycle_ring(&s, source, m).is_some())
            .count();
        assert!(findings >= 2, "fig3 has a ring with at least x1 and y1");
        let misses_after = s.dispatch_cache_stats().index_misses;
        assert_eq!(
            misses_before, misses_after,
            "ring lookups must not rebuild the applicability index"
        );
    }

    /// g(A, B) vs g(B, A) with C <= A, B: a call g(C, C) is applicable to
    /// both and neither specializer tuple dominates.
    #[test]
    fn ambiguous_multimethod_warns() {
        let mut s = Schema::new();
        let p = s.add_type("P", &[]).unwrap();
        let a = s.add_type("A", &[p]).unwrap();
        let b = s.add_type("B", &[p]).unwrap();
        let _c = s.add_type("C", &[a, b]).unwrap();
        let g = s.add_gf("g", 2, None).unwrap();
        for (label, s1, s2) in [("g1", a, b), ("g2", b, a)] {
            s.add_method(
                g,
                label,
                vec![Specializer::Type(s1), Specializer::Type(s2)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        }
        let report = lint(&s, None);
        assert_eq!(report.warnings(), 1, "{}", report.render_text());
        let d = &report.diagnostics[0];
        assert_eq!(d.code, LintCode::DispatchAmbiguity);
        assert!(d.message.contains("g1") && d.message.contains("g2"));
        assert!(d.message.contains("g(C, C)"), "{}", d.message);
        assert!(report.fails(true) && !report.fails(false));
    }

    /// v1(A, C) dominates v2(B, C) pointwise when A <= B — no ambiguity.
    #[test]
    fn dominated_pair_is_not_ambiguous() {
        let s = figures::fig3();
        let report = lint(&s, None);
        assert_eq!(report.warnings(), 0, "{}", report.render_text());
    }

    #[test]
    fn precedence_diamond_is_an_error() {
        let mut s = Schema::new();
        let p = s.add_type("P", &[]).unwrap();
        let q = s.add_type("Q", &[]).unwrap();
        let x = s.add_type("X", &[p, q]).unwrap();
        let y = s.add_type("Y", &[q, p]).unwrap();
        let _z = s.add_type("Z", &[x, y]).unwrap();
        let report = lint(&s, None);
        assert!(report.errors() > 0, "{}", report.render_text());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::PrecedenceConflict));
        assert!(report.fails(false));
    }

    #[test]
    fn broken_surrogate_wiring_is_an_error() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let _b = s.add_type("B", &[a]).unwrap();
        // A surrogate created but never wired above its source.
        let _hat = s.add_surrogate("^A", a).unwrap();
        let report = lint(&s, None);
        assert_eq!(report.errors(), 1, "{}", report.render_text());
        assert_eq!(report.diagnostics[0].code, LintCode::PrecedenceConflict);
        assert!(report.diagnostics[0].message.contains("^A"));
    }

    #[test]
    fn behavior_free_projection_names_load_bearing_attrs() {
        let mut s = Schema::new();
        let t = s.add_type("T", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, t).unwrap();
        let y = s.add_attr("y", ValueType::INT, t).unwrap();
        s.add_accessors(x).unwrap();
        s.add_accessors(y).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let get_x = s.gf_id("get_x").unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(t)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        // Keeping only y orphans f1 (which needs x).
        let (source, projection) = request(&s, "T", &["y"]);
        let report = lint(&s, Some((source, &projection)));
        assert_eq!(report.warnings(), 1, "{}", report.render_text());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::BehaviorFreeProjection)
            .unwrap();
        assert!(d.message.contains("behavior-free"));
        assert!(d.message.contains("`x`"), "{}", d.message);
        assert_eq!(d.severity, Severity::Warning);
        // Keeping x instead preserves behavior: no warning.
        let (source, projection) = request(&s, "T", &["x"]);
        let report = lint(&s, Some((source, &projection)));
        assert_eq!(report.warnings(), 0, "{}", report.render_text());
    }

    #[test]
    fn malformed_requests_are_tdl006_errors() {
        let s = figures::fig3();
        let source = s.type_id("A").unwrap();
        // Empty projection.
        let empty = BTreeSet::new();
        let report = lint(&s, Some((source, &empty)));
        assert!(report.errors() > 0);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::InvalidRequest));
        // Attribute not available at the source: a1 is owned by A, and C
        // is not a subtype of A.
        let c = s.type_id("C").unwrap();
        let a1 = s.attr_id("a1").unwrap();
        let bad: BTreeSet<AttrId> = [a1].into_iter().collect();
        let report = lint(&s, Some((c, &bad)));
        assert!(report.errors() > 0, "{}", report.render_text());
        assert!(report.render_text().contains("not available"));
    }

    #[test]
    fn reports_are_cached_per_generation() {
        let s = figures::fig3_with_z1();
        let (source, projection) = request(&s, "A", figures::FIG4_PROJECTION);
        let first = lint(&s, Some((source, &projection)));
        let stats = s.dispatch_cache_stats();
        assert_eq!(stats.lint_misses, 2); // schema part + request part
        assert_eq!(stats.lint_entries, 2);
        let second = lint(&s, Some((source, &projection)));
        assert_eq!(first, second);
        let stats = s.dispatch_cache_stats();
        assert_eq!(stats.lint_misses, 2, "second run must be all hits");
        assert_eq!(stats.lint_hits, 2);
    }
}
