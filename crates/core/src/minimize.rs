//! Surrogate minimization — the paper's §7 open problem.
//!
//! "It needs to be investigated how — if at all — the number of surrogate
//! types with empty states can be reduced in the refactored type
//! hierarchy, particularly when views are defined over views."
//!
//! This pass implements a conservative answer: a surrogate is *removable*
//! when it carries no state, no method mentions it (specializer, result or
//! local-variable type), and contracting it — splicing its supertypes into
//! each of its direct subtypes at the surrogate's precedence slot — leaves
//! every other type's class precedence list (restricted to the remaining
//! types) unchanged. The CPL condition is checked, not assumed: each
//! removal is attempted transactionally against a snapshot and rolled back
//! if any observable order shifts. Because dispatch ranking is a function
//! of CPL positions and no method mentions the victim, unchanged CPLs
//! imply unchanged dispatch.

use std::collections::BTreeSet;
use td_model::{Schema, SuperLink, TypeId, ValueType};

use crate::error::Result;

/// Outcome of a minimization run.
#[derive(Debug, Clone, Default)]
pub struct MinimizeOutcome {
    /// Surrogates removed, in removal order.
    pub removed: Vec<TypeId>,
    /// Candidate surrogates examined (including kept ones).
    pub examined: usize,
}

/// Repeatedly removes removable empty surrogates until none is left.
/// Types in `protected` (typically the derived view types themselves) are
/// never removed.
pub fn minimize_surrogates(
    schema: &mut Schema,
    protected: &BTreeSet<TypeId>,
) -> Result<MinimizeOutcome> {
    let mut outcome = MinimizeOutcome::default();
    loop {
        let candidates: Vec<TypeId> = schema
            .live_type_ids()
            .filter(|&t| schema.type_(t).is_surrogate() && !protected.contains(&t))
            .collect();
        let mut removed_this_round = false;
        for s in candidates {
            if !schema.is_live(s) {
                continue;
            }
            outcome.examined += 1;
            if try_remove(schema, s)? {
                outcome.removed.push(s);
                removed_this_round = true;
            }
        }
        if !removed_this_round {
            return Ok(outcome);
        }
    }
}

/// True when some method mentions `t` in a specializer, result type or
/// local-variable declaration.
fn mentioned_by_methods(schema: &Schema, t: TypeId) -> bool {
    schema.method_ids().any(|m| {
        let method = schema.method(m);
        if method.type_specializers().any(|(_, ty)| ty == t) {
            return true;
        }
        if method.result == Some(ValueType::Object(t)) {
            return true;
        }
        method
            .body()
            .map(|b| b.locals.iter().any(|l| l.ty == ValueType::Object(t)))
            .unwrap_or(false)
    })
}

fn try_remove(schema: &mut Schema, s: TypeId) -> Result<bool> {
    if !schema.type_(s).local_attrs.is_empty() || mentioned_by_methods(schema, s) {
        return Ok(false);
    }
    let snapshot = schema.clone();

    // Contract: each direct subtype adopts s's supertypes at s's slot.
    let s_supers: Vec<SuperLink> = schema.type_(s).supers().to_vec();
    let subs = schema.direct_subtypes(s);
    for &x in &subs {
        let slot = schema
            .type_(x)
            .supers()
            .iter()
            .find(|l| l.target == s)
            .map(|l| l.prec)
            .expect("direct subtype has the edge");
        schema.remove_super_edge(x, s);
        for link in &s_supers {
            // Only adopt supertypes that would otherwise become
            // unreachable; re-adding an already-reachable one at s's slot
            // can invert precedence (e.g. placing a type's surrogate ahead
            // of the type itself).
            if schema.is_subtype(x, link.target) {
                continue;
            }
            schema.add_super_with_prec(x, link.target, slot)?;
        }
    }
    for link in s_supers {
        schema.remove_super_edge(s, link.target);
    }
    if schema.retire_type(s).is_err() {
        *schema = snapshot;
        return Ok(false);
    }

    // Semantic check: every remaining type's CPL, with s filtered from the
    // old one, is unchanged; cumulative state is unchanged.
    let snapshot_types: Vec<TypeId> = snapshot.live_type_ids().collect();
    for t in snapshot_types {
        if t == s {
            continue;
        }
        let old_ok = snapshot.cpl(t);
        let new_ok = schema.cpl(t);
        let equal = match (old_ok, new_ok) {
            (Ok(old), Ok(new)) => {
                let old_f: Vec<TypeId> = old.into_iter().filter(|&x| x != s).collect();
                old_f == new
            }
            _ => false,
        };
        if !equal || snapshot.cumulative_attrs(t) != schema.cumulative_attrs(t) {
            *schema = snapshot;
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{project_named, ProjectionOptions};
    use td_model::ValueType;

    /// Chain C <= B <= A with one attribute at A; projecting it from C
    /// creates three surrogates, of which ^C (derived, protected) keeps
    /// the view, ^B and ^A... ^A holds the attribute, ^B is empty.
    #[test]
    fn removes_empty_intermediate_surrogate() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let _c = s.add_type("C", &[b]).unwrap();
        s.add_attr("x", ValueType::INT, a).unwrap();
        let d = project_named(&mut s, "C", &["x"], &ProjectionOptions::default()).unwrap();
        assert!(d.invariants_ok());
        let b_hat = s.type_id("^B").unwrap();
        assert!(s.type_(b_hat).local_attrs.is_empty());

        let protected: BTreeSet<TypeId> = [d.derived].into_iter().collect();
        let out = minimize_surrogates(&mut s, &protected).unwrap();
        // ^C is the derived type (protected, though empty); ^B is empty and
        // removable; ^A holds x and must stay.
        assert!(out.removed.contains(&b_hat));
        assert!(s.type_id("^A").is_ok());
        assert!(s.type_id("^B").is_err());
        assert!(s.is_live(d.derived));
        s.validate().unwrap();
        // The derived view still sees exactly {x}.
        let x = s.attr_id("x").unwrap();
        assert_eq!(s.cumulative_attrs(d.derived), [x].into_iter().collect());
        // B still reaches x through the contracted chain.
        assert!(s.cumulative_attrs(s.type_id("B").unwrap()).contains(&x));
    }

    #[test]
    fn keeps_surrogates_that_carry_state_or_methods() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let _b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_reader(x, a).unwrap();
        let d = project_named(&mut s, "B", &["x"], &ProjectionOptions::default()).unwrap();
        assert!(d.invariants_ok());
        // ^A carries x (state) and get_x was factored onto it (method).
        let a_hat = s.type_id("^A").unwrap();
        let protected: BTreeSet<TypeId> = [d.derived].into_iter().collect();
        let out = minimize_surrogates(&mut s, &protected).unwrap();
        assert!(!out.removed.contains(&a_hat));
        assert!(s.is_live(a_hat));
    }

    #[test]
    fn protected_types_never_removed() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        s.add_attr("x", ValueType::INT, a).unwrap();
        // Project only inherited state: the derived ^B is empty but is the
        // whole point of the derivation.
        let d = project_named(&mut s, "B", &["x"], &ProjectionOptions::default()).unwrap();
        assert!(s.type_(d.derived).local_attrs.is_empty());
        let protected: BTreeSet<TypeId> = [d.derived].into_iter().collect();
        minimize_surrogates(&mut s, &protected).unwrap();
        assert!(s.is_live(d.derived));
        let _ = b;
    }
}
