//! Schema metrics: size, shape and surrogate accounting.
//!
//! Used by the CLI's `show`/`check` commands and the reproduction
//! harness to summarize a schema at a glance.

use crate::schema::Schema;
use std::fmt;

/// Aggregate metrics for one schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaStats {
    /// Live (non-retired) types.
    pub types: usize,
    /// Live surrogate types.
    pub surrogates: usize,
    /// Surrogates with no local attributes.
    pub empty_surrogates: usize,
    /// Attributes.
    pub attrs: usize,
    /// Generic functions.
    pub gfs: usize,
    /// Methods in total.
    pub methods: usize,
    /// Accessor methods (readers + writers).
    pub accessors: usize,
    /// Types with more than one direct supertype.
    pub multiple_inheritance_types: usize,
    /// Root types (no supertypes).
    pub roots: usize,
    /// Length of the longest supertype chain (edges).
    pub max_depth: usize,
}

impl Schema {
    /// Computes aggregate metrics for the live portion of the schema.
    pub fn stats(&self) -> SchemaStats {
        let mut stats = SchemaStats {
            types: 0,
            surrogates: 0,
            empty_surrogates: 0,
            attrs: self.n_attrs(),
            gfs: self.n_gfs(),
            methods: self.n_methods(),
            accessors: self
                .method_ids()
                .filter(|&m| self.method(m).is_accessor())
                .count(),
            multiple_inheritance_types: 0,
            roots: 0,
            max_depth: 0,
        };
        for t in self.live_type_ids() {
            stats.types += 1;
            let node = self.type_(t);
            if node.is_surrogate() {
                stats.surrogates += 1;
                if node.local_attrs.is_empty() {
                    stats.empty_surrogates += 1;
                }
            }
            match node.supers().len() {
                0 => stats.roots += 1,
                1 => {}
                _ => stats.multiple_inheritance_types += 1,
            }
            stats.max_depth = stats.max_depth.max(self.depth_of(t));
        }
        stats
    }

    /// Length (in edges) of the longest chain from `t` to a root.
    pub fn depth_of(&self, t: crate::ids::TypeId) -> usize {
        self.type_(t)
            .super_ids()
            .map(|s| 1 + self.depth_of(s))
            .max()
            .unwrap_or(0)
    }
}

/// Counters exposed by the dispatch acceleration layer (see
/// [`crate::cache`]).
///
/// A *CPL* event covers both linearization memos (the list itself and the
/// surrogate-collapsed rank table derived from it); a *dispatch* event
/// covers the per-`(generic function, argument types)` applicable and
/// ranked method tables. `invalidations` counts the times a generation
/// bump actually flushed warm entries — mutations on an already-cold cache
/// are free and not counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchCacheStats {
    /// Current schema generation (bumped by every mutation).
    pub generation: u64,
    /// CPL/rank-table lookups answered from the memo.
    pub cpl_hits: u64,
    /// CPL/rank-table lookups that had to compute.
    pub cpl_misses: u64,
    /// Dispatch-table lookups answered from the cache.
    pub dispatch_hits: u64,
    /// Dispatch-table lookups that had to compute.
    pub dispatch_misses: u64,
    /// Applicability-index lookups answered from the cache (see
    /// [`crate::appindex`]).
    pub index_hits: u64,
    /// Applicability-index lookups that had to build the index.
    pub index_misses: u64,
    /// Lint-report lookups answered from the cache (see [`crate::diag`];
    /// the analysis lives in td-core).
    pub lint_hits: u64,
    /// Lint-report lookups that had to run the analysis.
    pub lint_misses: u64,
    /// Generation bumps that flushed at least one warm entry.
    pub invalidations: u64,
    /// Invalidations that had to flush *everything* (unstructured
    /// mutations, explicit clears) instead of a delta-closed dirty set.
    pub full_flushes: u64,
    /// Warm entries evicted by delta-closure refreshes (cumulative).
    pub delta_evictions: u64,
    /// Warm entries that survived a delta-closure refresh (cumulative;
    /// the whole point of delta invalidation — see [`crate::delta`]).
    pub delta_survivals: u64,
    /// Currently resident CPL + rank-table entries.
    pub cpl_entries: usize,
    /// Currently resident applicable + ranked dispatch entries.
    pub dispatch_entries: usize,
    /// Currently resident applicability indexes (one per projection
    /// source queried this generation).
    pub index_entries: usize,
    /// Currently resident lint reports (schema-wide plus per-request).
    pub lint_entries: usize,
    /// Deep-analysis report lookups answered from the cache (td-analyze;
    /// keyed by [`crate::cache::AnalysisKey`]).
    pub analysis_hits: u64,
    /// Deep-analysis report lookups that had to run the analyses.
    pub analysis_misses: u64,
    /// Currently resident deep-analysis reports.
    pub analysis_entries: usize,
}

impl DispatchCacheStats {
    /// Counter movement since `baseline` (event counters subtract,
    /// saturating; `generation` and the resident-entry gauges keep their
    /// current values). Used by the batch engine to attribute cache
    /// activity to one derivation: a fork inherits its snapshot's
    /// counters, so the fork's own work is `final.delta(&at_fork)`.
    pub fn delta(&self, baseline: &DispatchCacheStats) -> DispatchCacheStats {
        DispatchCacheStats {
            generation: self.generation,
            cpl_hits: self.cpl_hits.saturating_sub(baseline.cpl_hits),
            cpl_misses: self.cpl_misses.saturating_sub(baseline.cpl_misses),
            dispatch_hits: self.dispatch_hits.saturating_sub(baseline.dispatch_hits),
            dispatch_misses: self
                .dispatch_misses
                .saturating_sub(baseline.dispatch_misses),
            index_hits: self.index_hits.saturating_sub(baseline.index_hits),
            index_misses: self.index_misses.saturating_sub(baseline.index_misses),
            lint_hits: self.lint_hits.saturating_sub(baseline.lint_hits),
            lint_misses: self.lint_misses.saturating_sub(baseline.lint_misses),
            invalidations: self.invalidations.saturating_sub(baseline.invalidations),
            full_flushes: self.full_flushes.saturating_sub(baseline.full_flushes),
            delta_evictions: self
                .delta_evictions
                .saturating_sub(baseline.delta_evictions),
            delta_survivals: self
                .delta_survivals
                .saturating_sub(baseline.delta_survivals),
            cpl_entries: self.cpl_entries,
            dispatch_entries: self.dispatch_entries,
            index_entries: self.index_entries,
            lint_entries: self.lint_entries,
            analysis_hits: self.analysis_hits.saturating_sub(baseline.analysis_hits),
            analysis_misses: self
                .analysis_misses
                .saturating_sub(baseline.analysis_misses),
            analysis_entries: self.analysis_entries,
        }
    }

    /// Event-counter sum (`self + other`), for batch rollups. The
    /// non-additive fields keep the maximum of the two sides.
    pub fn merge(&self, other: &DispatchCacheStats) -> DispatchCacheStats {
        DispatchCacheStats {
            generation: self.generation.max(other.generation),
            cpl_hits: self.cpl_hits + other.cpl_hits,
            cpl_misses: self.cpl_misses + other.cpl_misses,
            dispatch_hits: self.dispatch_hits + other.dispatch_hits,
            dispatch_misses: self.dispatch_misses + other.dispatch_misses,
            index_hits: self.index_hits + other.index_hits,
            index_misses: self.index_misses + other.index_misses,
            lint_hits: self.lint_hits + other.lint_hits,
            lint_misses: self.lint_misses + other.lint_misses,
            invalidations: self.invalidations + other.invalidations,
            full_flushes: self.full_flushes + other.full_flushes,
            delta_evictions: self.delta_evictions + other.delta_evictions,
            delta_survivals: self.delta_survivals + other.delta_survivals,
            cpl_entries: self.cpl_entries.max(other.cpl_entries),
            dispatch_entries: self.dispatch_entries.max(other.dispatch_entries),
            index_entries: self.index_entries.max(other.index_entries),
            lint_entries: self.lint_entries.max(other.lint_entries),
            analysis_hits: self.analysis_hits + other.analysis_hits,
            analysis_misses: self.analysis_misses + other.analysis_misses,
            analysis_entries: self.analysis_entries.max(other.analysis_entries),
        }
    }

    /// Publishes these stats into the `td_telemetry` metrics registry:
    /// event counters become `cache/*` counters (added, so repeated
    /// publishes of *deltas* accumulate) and resident-entry counts become
    /// gauges (set, last write wins). A no-op while telemetry is off.
    pub fn publish(&self) {
        if !td_telemetry::enabled() {
            return;
        }
        use td_telemetry::metrics::{counter, gauge};
        for (name, value) in [
            ("cache/cpl_hits", self.cpl_hits),
            ("cache/cpl_misses", self.cpl_misses),
            ("cache/dispatch_hits", self.dispatch_hits),
            ("cache/dispatch_misses", self.dispatch_misses),
            ("cache/index_hits", self.index_hits),
            ("cache/index_misses", self.index_misses),
            ("cache/lint_hits", self.lint_hits),
            ("cache/lint_misses", self.lint_misses),
            ("cache/analysis_hits", self.analysis_hits),
            ("cache/analysis_misses", self.analysis_misses),
            ("cache/invalidations", self.invalidations),
            ("cache/full_flushes", self.full_flushes),
            ("cache/delta_evictions", self.delta_evictions),
            ("cache/delta_survivals", self.delta_survivals),
        ] {
            if value > 0 {
                counter(name).add(value);
            }
        }
        gauge("cache/generation").set(self.generation as i64);
        gauge("cache/cpl_entries").set(self.cpl_entries as i64);
        gauge("cache/dispatch_entries").set(self.dispatch_entries as i64);
        gauge("cache/index_entries").set(self.index_entries as i64);
        gauge("cache/lint_entries").set(self.lint_entries as i64);
        gauge("cache/analysis_entries").set(self.analysis_entries as i64);
    }
}

impl fmt::Display for DispatchCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dispatch cache: gen {}, cpl {}/{} hits ({} resident), \
             dispatch {}/{} hits ({} resident), \
             index {}/{} hits ({} resident), \
             lint {}/{} hits ({} resident), \
             analysis {}/{} hits ({} resident), {} invalidations \
             ({} full, {} evicted / {} kept by deltas)",
            self.generation,
            self.cpl_hits,
            self.cpl_hits + self.cpl_misses,
            self.cpl_entries,
            self.dispatch_hits,
            self.dispatch_hits + self.dispatch_misses,
            self.dispatch_entries,
            self.index_hits,
            self.index_hits + self.index_misses,
            self.index_entries,
            self.lint_hits,
            self.lint_hits + self.lint_misses,
            self.lint_entries,
            self.analysis_hits,
            self.analysis_hits + self.analysis_misses,
            self.analysis_entries,
            self.invalidations,
            self.full_flushes,
            self.delta_evictions,
            self.delta_survivals
        )
    }
}

impl fmt::Display for SchemaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "types: {} ({} surrogates, {} empty), roots: {}, max depth: {}, MI types: {}",
            self.types,
            self.surrogates,
            self.empty_surrogates,
            self.roots,
            self.max_depth,
            self.multiple_inheritance_types
        )?;
        write!(
            f,
            "attrs: {}, generic functions: {}, methods: {} ({} accessors)",
            self.attrs, self.gfs, self.methods, self.accessors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ValueType;

    #[test]
    fn stats_of_small_schema() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let c = s.add_type("C", &[a]).unwrap();
        let _d = s.add_type("D", &[b, c]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_accessors(x).unwrap();
        let hat = s.add_surrogate("^A", a).unwrap();
        s.add_super_highest(a, hat).unwrap();

        let st = s.stats();
        assert_eq!(st.types, 5);
        assert_eq!(st.surrogates, 1);
        assert_eq!(st.empty_surrogates, 1);
        assert_eq!(st.roots, 1); // ^A
        assert_eq!(st.multiple_inheritance_types, 1); // D
        assert_eq!(st.max_depth, 3); // D -> B -> A -> ^A
        assert_eq!(st.accessors, 2);
        assert_eq!(st.methods, 2);
        let text = st.to_string();
        assert!(text.contains("types: 5"));
        assert!(text.contains("accessors"));
    }

    #[test]
    fn cache_stats_delta_and_merge() {
        let a = DispatchCacheStats {
            generation: 3,
            cpl_hits: 10,
            cpl_misses: 4,
            dispatch_hits: 20,
            dispatch_misses: 6,
            index_hits: 9,
            index_misses: 3,
            lint_hits: 6,
            lint_misses: 2,
            invalidations: 1,
            full_flushes: 1,
            delta_evictions: 4,
            delta_survivals: 9,
            cpl_entries: 5,
            dispatch_entries: 7,
            index_entries: 2,
            lint_entries: 2,
            analysis_hits: 5,
            analysis_misses: 1,
            analysis_entries: 2,
        };
        let b = DispatchCacheStats {
            generation: 2,
            cpl_hits: 7,
            cpl_misses: 4,
            dispatch_hits: 5,
            dispatch_misses: 1,
            index_hits: 4,
            index_misses: 3,
            lint_hits: 1,
            lint_misses: 2,
            invalidations: 0,
            full_flushes: 0,
            delta_evictions: 1,
            delta_survivals: 4,
            cpl_entries: 2,
            dispatch_entries: 3,
            index_entries: 1,
            lint_entries: 1,
            analysis_hits: 2,
            analysis_misses: 1,
            analysis_entries: 1,
        };
        let d = a.delta(&b);
        assert_eq!(d.cpl_hits, 3);
        assert_eq!(d.cpl_misses, 0);
        assert_eq!(d.dispatch_hits, 15);
        assert_eq!(d.dispatch_misses, 5);
        assert_eq!(d.index_hits, 5);
        assert_eq!(d.index_misses, 0);
        assert_eq!(d.lint_hits, 5);
        assert_eq!(d.lint_misses, 0);
        assert_eq!(d.generation, 3);
        assert_eq!(d.cpl_entries, 5);
        assert_eq!(d.index_entries, 2);
        assert_eq!(d.lint_entries, 2);
        assert_eq!(d.analysis_hits, 3);
        assert_eq!(d.analysis_misses, 0);
        assert_eq!(d.analysis_entries, 2);
        // delta saturates rather than underflowing.
        assert_eq!(b.delta(&a).cpl_hits, 0);
        let m = a.merge(&b);
        assert_eq!(m.cpl_hits, 17);
        assert_eq!(m.dispatch_misses, 7);
        assert_eq!(m.index_hits, 13);
        assert_eq!(m.lint_hits, 7);
        assert_eq!(m.lint_misses, 4);
        assert_eq!(m.generation, 3);
        assert_eq!(m.dispatch_entries, 7);
        assert_eq!(m.index_entries, 2);
        assert_eq!(m.lint_entries, 2);
        assert_eq!(m.analysis_hits, 7);
        assert_eq!(m.analysis_misses, 2);
        assert_eq!(m.analysis_entries, 2);
    }

    #[test]
    fn publish_bridges_counters_and_gauges_into_the_registry() {
        let stats = DispatchCacheStats {
            generation: 7,
            cpl_hits: 3,
            index_misses: 2,
            cpl_entries: 4,
            ..DispatchCacheStats::default()
        };
        // Disabled: publishing must not touch the registry.
        td_telemetry::set_enabled(false);
        td_telemetry::metrics::reset();
        stats.publish();
        assert!(td_telemetry::metrics::snapshot().is_empty());

        td_telemetry::set_enabled(true);
        stats.publish();
        stats.publish();
        td_telemetry::set_enabled(false);
        let snap = td_telemetry::metrics::snapshot();
        td_telemetry::metrics::reset();
        // Counters accumulate across publishes (deltas add up)…
        assert_eq!(snap.counters["cache/cpl_hits"], 6);
        assert_eq!(snap.counters["cache/index_misses"], 4);
        // …zero counters are not registered at all…
        assert!(!snap.counters.contains_key("cache/dispatch_hits"));
        // …and gauges are last-write-wins.
        assert_eq!(snap.gauges["cache/generation"], 7);
        assert_eq!(snap.gauges["cache/cpl_entries"], 4);
    }

    #[test]
    fn depth_of_roots_is_zero() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        assert_eq!(s.depth_of(a), 0);
        assert_eq!(s.stats().max_depth, 0);
    }
}
