//! Generic functions and multi-methods (§2 of the paper).
//!
//! Operations on instances are defined by *generic functions*; a generic
//! function corresponds to a set of *methods* defining its type-specific
//! behavior. A method is selected at call time on the basis of the types of
//! **all** actual arguments (multi-method dispatch, as in CommonLoops/CLOS
//! and the era's proposed SQL3). Single-dispatch languages are the special
//! case where only the first argument's specializer varies.
//!
//! Methods are either *accessors* (readers/writers of a single attribute —
//! the only way to touch state) or *general* methods with a body
//! ([`crate::body::Body`]) that may invoke other generic functions.

use crate::attrs::{PrimType, ValueType};
use crate::body::Body;
use crate::ids::{AttrId, GfId, MethodId, NameId, TypeId};
use std::fmt;

/// A generic function: a named operation with fixed arity and a declared
/// result contract, implemented by a set of methods.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericFunction {
    /// Unique name, e.g. `"income"` or `"get_SSN"`, interned in the
    /// schema's arena (resolve with [`crate::Schema::gf_name`]).
    pub name: NameId,
    /// Number of formal arguments every method must specialize.
    pub arity: usize,
    /// Declared result type (`None` = procedure with no result).
    pub result: Option<ValueType>,
    /// Methods implementing this generic function, in definition order.
    pub methods: Vec<MethodId>,
}

/// What one formal argument position of a method dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Specializer {
    /// The argument must be an instance of this type or a subtype
    /// (inclusion polymorphism).
    Type(TypeId),
    /// The argument must be a primitive of this kind (used for e.g. the
    /// value argument of writer accessors). Primitive positions never
    /// participate in the paper's applicability analysis.
    Prim(PrimType),
}

impl Specializer {
    /// The specializing type, if this position dispatches on an object type.
    #[inline]
    pub fn as_type(self) -> Option<TypeId> {
        match self {
            Specializer::Type(t) => Some(t),
            Specializer::Prim(_) => None,
        }
    }
}

impl fmt::Display for Specializer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Specializer::Type(t) => write!(f, "{t}"),
            Specializer::Prim(p) => write!(f, "{p}"),
        }
    }
}

/// The flavor of a method.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodKind {
    /// Reader accessor: returns the value of one attribute of its single
    /// object argument.
    Reader(AttrId),
    /// Writer (the paper's "mutator") accessor: stores its second argument
    /// into one attribute of its first argument.
    Writer(AttrId),
    /// A general method with an analyzable, executable body.
    General(Body),
}

impl MethodKind {
    /// The attribute directly accessed, if this is an accessor.
    #[inline]
    pub fn accessed_attr(&self) -> Option<AttrId> {
        match self {
            MethodKind::Reader(a) | MethodKind::Writer(a) => Some(*a),
            MethodKind::General(_) => None,
        }
    }

    /// True for readers and writers.
    #[inline]
    pub fn is_accessor(&self) -> bool {
        !matches!(self, MethodKind::General(_))
    }
}

/// One method of a generic function.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// Owning generic function.
    pub gf: GfId,
    /// Display label, e.g. `"v1"` or `"get_h2"` — used by traces, the
    /// reproduction harness and error messages. Interned in the schema's
    /// arena (resolve with [`crate::Schema::method_label`]).
    pub label: NameId,
    /// One specializer per formal argument; length equals the generic
    /// function's arity. Method factorization (§6.1) rewrites `Type`
    /// entries to surrogate types.
    pub specializers: Vec<Specializer>,
    /// Accessor or general body.
    pub kind: MethodKind,
    /// Declared result type of this method (must agree with the generic
    /// function's contract when both are present).
    pub result: Option<ValueType>,
}

impl Method {
    /// True for readers and writers.
    #[inline]
    pub fn is_accessor(&self) -> bool {
        self.kind.is_accessor()
    }

    /// The body, if this is a general method.
    #[inline]
    pub fn body(&self) -> Option<&Body> {
        match &self.kind {
            MethodKind::General(b) => Some(b),
            _ => None,
        }
    }

    /// Mutable access to the body, if general.
    #[inline]
    pub fn body_mut(&mut self) -> Option<&mut Body> {
        match &mut self.kind {
            MethodKind::General(b) => Some(b),
            _ => None,
        }
    }

    /// Iterates the object-type specializers together with their argument
    /// positions.
    pub fn type_specializers(&self) -> impl Iterator<Item = (usize, TypeId)> + '_ {
        self.specializers
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_type().map(|t| (i, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_method() -> Method {
        Method {
            gf: GfId(0),
            label: NameId(0),
            specializers: vec![
                Specializer::Type(TypeId(1)),
                Specializer::Prim(PrimType::Int),
                Specializer::Type(TypeId(2)),
            ],
            kind: MethodKind::General(Body::new()),
            result: None,
        }
    }

    #[test]
    fn type_specializers_skips_prims() {
        let m = mk_method();
        let ts: Vec<_> = m.type_specializers().collect();
        assert_eq!(ts, vec![(0, TypeId(1)), (2, TypeId(2))]);
    }

    #[test]
    fn accessor_kind_queries() {
        let r = MethodKind::Reader(AttrId(3));
        assert!(r.is_accessor());
        assert_eq!(r.accessed_attr(), Some(AttrId(3)));
        let g = MethodKind::General(Body::new());
        assert!(!g.is_accessor());
        assert_eq!(g.accessed_attr(), None);
    }

    #[test]
    fn body_access() {
        let mut m = mk_method();
        assert!(m.body().is_some());
        m.body_mut().unwrap().stmts.clear();
        let r = Method {
            kind: MethodKind::Reader(AttrId(0)),
            ..mk_method()
        };
        assert!(r.body().is_none());
    }

    #[test]
    fn specializer_display() {
        assert_eq!(Specializer::Type(TypeId(7)).to_string(), "T7");
        assert_eq!(Specializer::Prim(PrimType::Str).to_string(), "str");
    }
}
