//! Deterministic textual rendering of schemas.
//!
//! The reproduction harness regenerates the paper's figures as text; golden
//! tests compare against the hierarchies drawn in the paper. Output is
//! sorted by type name so it is stable across runs and schema-construction
//! orders.

use crate::ids::TypeId;
use crate::methods::Specializer;
use crate::schema::Schema;
use std::fmt::Write as _;

impl Schema {
    /// Renders the hierarchy, one line per live type:
    ///
    /// ```text
    /// Employee {pay_rate, hrs_worked} <- Person(1)
    /// ^Employee [surrogate of Employee] {pay_rate} <- ^Person(1)
    /// ```
    pub fn render_hierarchy(&self) -> String {
        let mut ids: Vec<TypeId> = self.live_type_ids().collect();
        ids.sort_by(|&x, &y| self.type_name(x).cmp(self.type_name(y)));
        let mut out = String::new();
        for t in ids {
            let node = self.type_(t);
            let _ = write!(out, "{}", self.type_name(t));
            if let Some(src) = node.surrogate_source() {
                let _ = write!(out, " [surrogate of {}]", self.type_name(src));
            }
            let attrs: Vec<&str> = node
                .local_attrs
                .iter()
                .map(|&a| self.attr_name(a))
                .collect();
            let _ = write!(out, " {{{}}}", attrs.join(", "));
            if !node.supers().is_empty() {
                let supers: Vec<String> = node
                    .supers()
                    .iter()
                    .map(|l| format!("{}({})", self.type_name(l.target), l.prec))
                    .collect();
                let _ = write!(out, " <- {}", supers.join(" "));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the hierarchy as a Graphviz DOT digraph: subtype→supertype
    /// edges labeled with precedence, surrogates drawn dashed and grouped
    /// with their sources by color. Paste into `dot -Tsvg` to draw the
    /// paper's figures.
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph hierarchy {\n  rankdir=BT;\n  node [shape=record];\n");
        let mut ids: Vec<crate::ids::TypeId> = self.live_type_ids().collect();
        ids.sort_by(|&x, &y| self.type_name(x).cmp(self.type_name(y)));
        for t in ids.iter().copied() {
            let node = self.type_(t);
            let attrs: Vec<&str> = node
                .local_attrs
                .iter()
                .map(|&a| self.attr_name(a))
                .collect();
            let style = if node.is_surrogate() {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{}\" [label=\"{{{}|{}}}\"{}];",
                self.type_name(t),
                self.type_name(t).replace('^', "\\^"),
                attrs.join("\\n"),
                style
            );
        }
        for t in ids {
            for link in self.type_(t).supers() {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{}\"];",
                    self.type_name(t),
                    self.type_name(link.target),
                    link.prec
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders one method signature, e.g. `v1(^A, ^C)`.
    pub fn render_signature(&self, m: crate::ids::MethodId) -> String {
        let method = self.method(m);
        let args: Vec<String> = method
            .specializers
            .iter()
            .map(|s| match s {
                Specializer::Type(t) => self.type_name(*t).to_string(),
                Specializer::Prim(p) => p.to_string(),
            })
            .collect();
        format!("{}({})", self.name(method.label), args.join(", "))
    }

    /// Renders every method signature grouped by generic function, sorted
    /// by generic-function name then definition order.
    pub fn render_methods(&self) -> String {
        let mut gfs: Vec<_> = self.gf_ids().collect();
        gfs.sort_by(|&x, &y| self.gf_name(x).cmp(self.gf_name(y)));
        let mut out = String::new();
        for g in gfs {
            for &m in &self.gf(g).methods {
                let _ = writeln!(out, "{}", self.render_signature(m));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ValueType;
    use crate::methods::MethodKind;

    #[test]
    fn hierarchy_rendering_is_sorted_and_complete() {
        let mut s = Schema::new();
        let p = s.add_type("Person", &[]).unwrap();
        let e = s.add_type("Employee", &[p]).unwrap();
        s.add_attr("name", ValueType::STR, p).unwrap();
        s.add_attr("pay_rate", ValueType::FLOAT, e).unwrap();
        let r = s.render_hierarchy();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "Employee {pay_rate} <- Person(1)");
        assert_eq!(lines[1], "Person {name}");
    }

    #[test]
    fn surrogates_are_annotated() {
        let mut s = Schema::new();
        let p = s.add_type("Person", &[]).unwrap();
        let hat = s.add_surrogate("^Person", p).unwrap();
        s.add_super_highest(p, hat).unwrap();
        let r = s.render_hierarchy();
        assert!(r.contains("^Person [surrogate of Person] {}"));
        assert!(r.contains("Person {} <- ^Person(0)"));
    }

    #[test]
    fn dot_output_is_wellformed() {
        let mut s = Schema::new();
        let p = s.add_type("Person", &[]).unwrap();
        let e = s.add_type("Employee", &[p]).unwrap();
        s.add_attr("pay", ValueType::FLOAT, e).unwrap();
        let hat = s.add_surrogate("^Person", p).unwrap();
        s.add_super_highest(p, hat).unwrap();
        let dot = s.render_dot();
        assert!(dot.starts_with("digraph hierarchy {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("\"Employee\" -> \"Person\" [label=\"1\"]"));
        assert!(dot.contains("\"Person\" -> \"^Person\" [label=\"0\"]"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("pay"));
    }

    #[test]
    fn signatures_render_types_and_prims() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_accessors(x).unwrap();
        let f = s.add_gf("v", 2, None).unwrap();
        let m = s
            .add_method(
                f,
                "v1",
                vec![Specializer::Type(a), Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        assert_eq!(s.render_signature(m), "v1(A, A)");
        let methods = s.render_methods();
        assert!(methods.contains("get_x(A)"));
        assert!(methods.contains("set_x(A, int)"));
        assert!(methods.contains("v1(A, A)"));
    }
}
