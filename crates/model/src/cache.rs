//! The dispatch acceleration layer: memoized CPLs and a delta-invalidated
//! dispatch-table cache.
//!
//! Multi-method dispatch is the repository's hot loop. The I2 invariant
//! replay (`td-core`) re-dispatches every pre-existing call tuple after a
//! refactoring pass, and the `IsApplicable` call-graph walk re-scans a
//! generic function's methods at every call site. Uncached, each
//! `most_specific` call recomputes class precedence lists (a topological
//! sort over the ancestor DAG, per argument) and rescans every method of
//! the generic function — O(calls × methods × hierarchy). The standard fix
//! in the multi-method literature is dispatch-table precomputation; this
//! module implements the lazy variant of it:
//!
//! * **CPL memo** — `cpl(t)` and the collapsed specificity ranks derived
//!   from it are computed once per type per schema *generation* and shared
//!   via `Arc`.
//! * **Dispatch tables** — per `(GfId, argument-type-vector)` the cache
//!   stores both the unranked applicable-method set (consumed by the
//!   `IsApplicable` walk) and the ranked list (consumed by
//!   `rank_applicable`/`most_specific`).
//! * **Delta invalidation** — every schema mutation emits a structured
//!   [`crate::delta::SchemaDelta`] describing what changed
//!   (a type node touched, a method added, …). Recording a delta is O(1)
//!   (plus a set insert); the first read after a mutation *closes* the
//!   recorded deltas into a dirty set — touched types are closed downward
//!   over the hierarchy (everything below a rewired node reaches it
//!   through its ancestor chain), touched methods are closed over the
//!   condensation indexes' reverse call edges (an index is stale iff its
//!   universe contains the method or its source newly admits it) — and
//!   evicts exactly the reachable entries. Untouched entries survive the
//!   mutation warm; dirty per-source indexes are repaired lazily, one
//!   rebuild per dirty source, instead of rebuilding every index.
//!
//! ## Why the closure is computed at read time
//!
//! Deltas are recorded under `&mut Schema` but closed under `&Schema` at
//! the next cached read, against the *post-mutation* hierarchy. This is
//! sound: if a batch of mutations changes any type `X`'s ancestor set,
//! then some edge on an old or new ancestor path of `X` changed at a node
//! `n` reachable from `X` through edges that did *not* change below it
//! (induction on the lowest changed node of the path), so `X ∈
//! descendants(n)` at read time and `X` lands in the dirty set. Dispatch
//! entries are keyed by argument types whose results depend only on their
//! *upward* reachability, which the same argument covers; method-shaped
//! deltas carry their gf and method ids explicitly.
//!
//! The cache lives inside [`Schema`] behind a `Mutex` (keeping `Schema:
//! Send + Sync`), is cloned with the schema (a clone is a snapshot, so
//! the warm entries — and any still-unclosed deltas — stay valid), and is
//! observable: hit/miss/invalidation/eviction/survival counters are
//! exported as [`DispatchCacheStats`] through
//! [`Schema::dispatch_cache_stats`], the CLI `explain` path and the
//! invariant report.

use crate::appindex::{AnalysisPrecision, ApplicabilityIndex};
use crate::delta::{CarryReport, SchemaDelta, SchemaDiff};
use crate::diag::LintReport;
use crate::dispatch::CallArg;
use crate::error::Result;
use crate::ids::{AttrId, GfId, MethodId, TypeId};
use crate::schema::Schema;
use crate::stats::DispatchCacheStats;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-type specificity ranks with surrogate collapse (see
/// `Schema::collapsed_ranks`).
pub(crate) type Ranks = Vec<(TypeId, usize)>;

/// Key of the per-call dispatch tables.
pub(crate) type CallKey = (GfId, Vec<CallArg>);

/// Key of the cached lint reports: `None` is the schema-wide analysis,
/// `Some((source, projection))` the per-request projection-safety part.
/// The projection list is kept sorted by the writer (td-core's lint pass
/// sorts before storing).
pub type LintKey = Option<(TypeId, Vec<AttrId>)>;

/// Key of the cached deep-analysis reports (td-analyze): the same
/// two-part shape as [`LintKey`] plus the precision the analyses ran at.
pub type AnalysisKey = (LintKey, AnalysisPrecision);

/// Deltas recorded since the last refresh, folded into the per-kind sets
/// the dirty closure starts from.
#[derive(Debug, Clone, Default)]
struct PendingDeltas {
    /// An unbounded mutation was recorded: flush everything.
    full: bool,
    /// Type nodes handed out `&mut` (edges/origin/attrs/liveness).
    types: HashSet<TypeId>,
    /// Generic functions with added or touched methods.
    gfs: HashSet<GfId>,
    /// Methods added or touched.
    methods: HashSet<MethodId>,
    /// An attribute definition was touched. Footprint bitsets reference
    /// stable ids so the condensation indexes survive, but the deep
    /// analyses (td-analyze) read attribute *value types*, so their
    /// cached reports must not.
    attrs_touched: bool,
}

impl PendingDeltas {
    fn record(&mut self, delta: SchemaDelta) {
        match delta {
            // Pure additions of leaf entities: nothing cached can
            // reference them, so only the lint flush (which every
            // refresh performs) applies.
            SchemaDelta::TypeAdded(_) | SchemaDelta::AttrAdded(_) | SchemaDelta::GfAdded(_) => {}
            // Attribute definitions feed only per-request computations,
            // lint and the deep analyses; footprint bitsets reference
            // stable ids.
            SchemaDelta::AttrTouched(_) => {
                self.attrs_touched = true;
            }
            SchemaDelta::TypeTouched(t) => {
                self.types.insert(t);
            }
            SchemaDelta::MethodAdded { gf, method } | SchemaDelta::MethodTouched { gf, method } => {
                self.gfs.insert(gf);
                self.methods.insert(method);
            }
            SchemaDelta::Full => self.full = true,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct CacheInner {
    /// Monotonic schema-mutation counter.
    generation: u64,
    /// Generation the maps below were populated under.
    entries_generation: u64,
    /// Deltas recorded since `entries_generation`, closed and drained by
    /// [`CacheInner::refresh`].
    pending: PendingDeltas,
    cpl: HashMap<TypeId, Arc<Vec<TypeId>>>,
    ranks: HashMap<TypeId, Arc<Ranks>>,
    applicable: HashMap<CallKey, Arc<Vec<MethodId>>>,
    ranked: HashMap<CallKey, Arc<Vec<MethodId>>>,
    /// Applicability condensation indexes, keyed by projection source
    /// (the call graph and its footprints depend on the source type but
    /// not on the projection list — see [`crate::appindex`]).
    app_index: HashMap<TypeId, Arc<ApplicabilityIndex>>,
    /// Semantically refined condensation indexes (see
    /// [`AnalysisPrecision::Semantic`]), keyed by source like
    /// `app_index`. Kept separate so the snapshot format (which
    /// serializes only the syntactic map) is unchanged.
    app_index_semantic: HashMap<TypeId, Arc<ApplicabilityIndex>>,
    /// Lint reports, keyed by [`LintKey`]. The analysis itself lives in
    /// td-core; the model only stores the results so every fork of a
    /// [`crate::SchemaSnapshot`] shares them generationally.
    lint: HashMap<LintKey, Arc<LintReport>>,
    /// Deep-analysis reports (td-analyze), keyed by [`AnalysisKey`].
    /// Unlike lint reports, the per-source entries participate in the
    /// PR-8 delta closure: a single-method edit evicts only the sources
    /// whose condensation universe the edit can reach.
    analysis: HashMap<AnalysisKey, Arc<LintReport>>,
    cpl_hits: u64,
    cpl_misses: u64,
    dispatch_hits: u64,
    dispatch_misses: u64,
    index_hits: u64,
    index_misses: u64,
    lint_hits: u64,
    lint_misses: u64,
    analysis_hits: u64,
    analysis_misses: u64,
    invalidations: u64,
    full_flushes: u64,
    delta_evictions: u64,
    delta_survivals: u64,
}

fn retain_counting<K: Eq + std::hash::Hash, V>(
    map: &mut HashMap<K, V>,
    keep: impl Fn(&K, &V) -> bool,
) -> usize {
    let before = map.len();
    map.retain(|k, v| keep(k, v));
    before - map.len()
}

impl CacheInner {
    fn has_entries(&self) -> bool {
        !self.cpl.is_empty()
            || !self.ranks.is_empty()
            || !self.applicable.is_empty()
            || !self.ranked.is_empty()
            || !self.app_index.is_empty()
            || !self.app_index_semantic.is_empty()
            || !self.lint.is_empty()
            || !self.analysis.is_empty()
    }

    fn clear_entries(&mut self) {
        self.cpl.clear();
        self.ranks.clear();
        self.applicable.clear();
        self.ranked.clear();
        self.app_index.clear();
        self.app_index_semantic.clear();
        self.lint.clear();
        self.analysis.clear();
    }

    /// Closes the recorded deltas into a dirty set and evicts exactly the
    /// reachable entries. Called at the top of every cached read; `schema`
    /// is the (post-mutation) schema the cache belongs to. The hierarchy
    /// walks used here (`descendants`, `method_applicable_to_type`) read
    /// raw supertype edges and never re-enter the cache, so calling them
    /// while holding the lock cannot deadlock.
    fn refresh(&mut self, schema: &Schema) {
        if self.entries_generation == self.generation {
            return;
        }
        self.entries_generation = self.generation;
        let dirt = std::mem::take(&mut self.pending);
        if !self.has_entries() {
            return;
        }
        if dirt.full {
            self.clear_entries();
            self.invalidations += 1;
            self.full_flushes += 1;
            return;
        }

        // Downward hierarchy closure: every cached artifact of a type
        // depends on the type's ancestor chain, so a touched node dirties
        // itself and its transitive subtypes. (A node already swept up as
        // someone's descendant contributes nothing new: descendants are
        // transitively closed.)
        let mut dirty_types: HashSet<TypeId> = HashSet::new();
        for &t in &dirt.types {
            if dirty_types.insert(t) {
                dirty_types.extend(schema.descendants(t));
            }
        }

        let mut evicted = 0usize;
        if !dirty_types.is_empty() {
            evicted += retain_counting(&mut self.cpl, |t, _| !dirty_types.contains(t));
            evicted += retain_counting(&mut self.ranks, |t, _| !dirty_types.contains(t));
        }
        if !dirty_types.is_empty() || !dirt.gfs.is_empty() {
            let stale_call = |key: &CallKey| {
                dirt.gfs.contains(&key.0)
                    || key
                        .1
                        .iter()
                        .any(|a| matches!(a, CallArg::Object(t) if dirty_types.contains(t)))
            };
            evicted += retain_counting(&mut self.applicable, |k, _| !stale_call(k));
            evicted += retain_counting(&mut self.ranked, |k, _| !stale_call(k));
        }
        if !dirty_types.is_empty() || !dirt.methods.is_empty() {
            // Reverse call-edge closure over the condensation indexes: a
            // per-source index is stale iff its source type is dirty, its
            // universe (`node_of`, the call-graph node set) contains a
            // touched method, or a touched/new method is now applicable
            // to its source (and would enter the universe on rebuild).
            let stale_index = |source: &TypeId, idx: &Arc<ApplicabilityIndex>| {
                dirty_types.contains(source)
                    || dirt.methods.iter().any(|m| {
                        idx.node_of.contains_key(m) || schema.method_applicable_to_type(*m, *source)
                    })
            };
            evicted += retain_counting(&mut self.app_index, |s, idx| !stale_index(s, idx));
            evicted += retain_counting(&mut self.app_index_semantic, |s, idx| !stale_index(s, idx));
        }
        // Lint findings mention names, owners and dispatch outcomes
        // across the whole schema; every mutation flushes them (they
        // re-derive quickly and are presentation-layer).
        evicted += self.lint.len();
        self.lint.clear();
        // Deep-analysis reports: the schema-wide part (`None` key)
        // flushes like lint, but a per-source part survives exactly when
        // a condensation index for its source survived the closure above
        // — the analyses are scoped to that universe, so a surviving
        // index proves no touched method can reach the report.
        let attrs_touched = dirt.attrs_touched;
        evicted += retain_counting(&mut self.analysis, |(key, _), _| match key {
            None => false,
            Some((source, _)) => {
                !attrs_touched
                    && (self.app_index.contains_key(source)
                        || self.app_index_semantic.contains_key(source))
            }
        });

        let survivors = self.cpl.len()
            + self.ranks.len()
            + self.applicable.len()
            + self.ranked.len()
            + self.app_index.len()
            + self.app_index_semantic.len()
            + self.analysis.len();
        if evicted > 0 {
            self.invalidations += 1;
        }
        self.delta_evictions += evicted as u64;
        self.delta_survivals += survivors as u64;
    }
}

/// The interior-mutable cache carried by every [`Schema`].
///
/// All read paths go through `&Schema`, so the cache is populated behind
/// a `Mutex`; mutation paths have `&mut Schema` and record deltas
/// without contention via `get_mut`.
pub struct DispatchCache {
    inner: Mutex<CacheInner>,
}

impl Default for DispatchCache {
    fn default() -> Self {
        DispatchCache {
            inner: Mutex::new(CacheInner::default()),
        }
    }
}

impl Clone for DispatchCache {
    fn clone(&self) -> Self {
        // A schema clone is a snapshot: carrying the warm entries (and
        // any still-unclosed deltas) over is sound because they were
        // built from the state being cloned.
        DispatchCache {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

impl std::fmt::Debug for DispatchCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("DispatchCache")
            .field("generation", &inner.generation)
            .field("cpl_entries", &inner.cpl.len())
            .field(
                "dispatch_entries",
                &(inner.applicable.len() + inner.ranked.len()),
            )
            .finish()
    }
}

impl DispatchCache {
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // A poisoned lock only means a panic mid-insert; the maps are
        // still structurally sound, so recover rather than propagate.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a structured schema mutation. Stale entries are closed
    /// over and evicted lazily by the next read, so this is O(1) plus a
    /// set insert.
    pub(crate) fn note(&mut self, delta: SchemaDelta) {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        inner.generation += 1;
        inner.pending.record(delta);
    }

    /// Clones the warm entry maps for snapshot serialization (stats
    /// counters stay behind; `Arc` clones make this cheap). Entries are
    /// only exported after settling any pending deltas against `schema`.
    pub(crate) fn export_warm(&self, schema: &Schema) -> WarmCaches {
        let mut inner = self.lock();
        inner.refresh(schema);
        WarmCaches {
            cpl: inner.cpl.clone(),
            ranks: inner.ranks.clone(),
            applicable: inner.applicable.clone(),
            ranked: inner.ranked.clone(),
            app_index: inner.app_index.clone(),
        }
    }

    /// Installs deserialized warm entries, tagged as current for the
    /// schema's present generation so the first read serves them instead
    /// of flushing (the snapshot loader's cache-restore step). Any
    /// pending deltas are dropped: the entries are declared current.
    pub(crate) fn import_warm(&mut self, warm: WarmCaches) {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        inner.cpl = warm.cpl;
        inner.ranks = warm.ranks;
        inner.applicable = warm.applicable;
        inner.ranked = warm.ranked;
        inner.app_index = warm.app_index;
        inner.entries_generation = inner.generation;
        inner.pending = PendingDeltas::default();
    }
}

/// The serializable subset of the dispatch cache: every warm map except
/// the lint reports (lint findings are presentation-layer and re-derive
/// quickly; see the snapshot module docs).
pub(crate) struct WarmCaches {
    pub(crate) cpl: HashMap<TypeId, Arc<Vec<TypeId>>>,
    pub(crate) ranks: HashMap<TypeId, Arc<Ranks>>,
    pub(crate) applicable: HashMap<CallKey, Arc<Vec<MethodId>>>,
    pub(crate) ranked: HashMap<CallKey, Arc<Vec<MethodId>>>,
    pub(crate) app_index: HashMap<TypeId, Arc<ApplicabilityIndex>>,
}

impl Schema {
    /// The schema's mutation generation. Every mutating operation (adding
    /// types, attributes, methods or edges; any `&mut` access to a method,
    /// type node or attribute) increments it; cached dispatch results
    /// never cross generations.
    pub fn generation(&self) -> u64 {
        self.cache.lock().generation
    }

    /// A snapshot of the dispatch-cache counters.
    pub fn dispatch_cache_stats(&self) -> DispatchCacheStats {
        let inner = self.cache.lock();
        DispatchCacheStats {
            generation: inner.generation,
            cpl_hits: inner.cpl_hits,
            cpl_misses: inner.cpl_misses,
            dispatch_hits: inner.dispatch_hits,
            dispatch_misses: inner.dispatch_misses,
            index_hits: inner.index_hits,
            index_misses: inner.index_misses,
            lint_hits: inner.lint_hits,
            lint_misses: inner.lint_misses,
            invalidations: inner.invalidations,
            full_flushes: inner.full_flushes,
            delta_evictions: inner.delta_evictions,
            delta_survivals: inner.delta_survivals,
            cpl_entries: inner.cpl.len() + inner.ranks.len(),
            dispatch_entries: inner.applicable.len() + inner.ranked.len(),
            index_entries: inner.app_index.len() + inner.app_index_semantic.len(),
            lint_entries: inner.lint.len(),
            analysis_hits: inner.analysis_hits,
            analysis_misses: inner.analysis_misses,
            analysis_entries: inner.analysis.len(),
        }
    }

    /// Warms the derivation caches for every live type: CPL memo, rank
    /// tables and the applicability condensation index. Best-effort —
    /// types whose linearization or index build fails (inconsistent
    /// precedence, dataflow errors) are skipped; the failure resurfaces
    /// on the request that actually needs them. `tdv snapshot save` and
    /// the server's snapshot persistence call this so a reloaded schema
    /// starts with every cache hot. After a mutation, only the entries
    /// its delta closure evicted are recomputed — the rest are hits.
    pub fn warm_caches(&self) {
        for t in self.live_type_ids() {
            let _ = self.cpl(t);
            let _ = self.cached_ranks(t);
            let _ = self.cached_applicability_index(t);
        }
    }

    /// Drops every cached entry (counted as an invalidation if any entry
    /// existed). Benchmarks use this to measure cold dispatch against
    /// delta-invalidated re-derivation.
    pub fn clear_dispatch_cache(&self) {
        let mut inner = self.cache.lock();
        inner.generation += 1;
        inner.pending.record(SchemaDelta::Full);
        inner.refresh(self);
    }

    /// Carries warm cache entries from `donor` (the previous version of
    /// this schema, built independently — e.g. the prior parse of a
    /// registered schema text) into this schema's cache, keeping only
    /// entries whose dependency closure `diff` proves untouched.
    ///
    /// Requires `diff = diff_schemas(donor, self)` with
    /// [`ids_stable`](SchemaDiff::ids_stable); returns an empty report
    /// otherwise (ids are the cache keys, so unstable ids make every old
    /// entry meaningless here). Changed types dirty their transitive
    /// subtypes exactly like a live mutation would; added or changed
    /// methods dirty their gf's dispatch tables and every index that
    /// contains or would now admit them. Existing entries of this cache
    /// are never overwritten.
    pub fn carry_warm_from(&self, donor: &Schema, diff: &SchemaDiff) -> CarryReport {
        let mut report = CarryReport::default();
        if !diff.ids_stable {
            return report;
        }
        let mut dirty_types: HashSet<TypeId> = HashSet::new();
        for name in diff.changed_types.iter().chain(&diff.added_types) {
            // Added types dirty nothing existing, but close them anyway:
            // an added type wired *above* an existing one shows up as a
            // changed existing type, and closing both is harmless.
            if let Ok(t) = self.type_id(name) {
                if dirty_types.insert(t) {
                    dirty_types.extend(self.descendants(t));
                }
            }
        }
        let mut dirty_gfs: HashSet<GfId> = HashSet::new();
        for name in diff.changed_gfs.iter() {
            if let Ok(g) = self.gf_id(name) {
                dirty_gfs.insert(g);
            }
        }
        let mut dirty_methods: Vec<MethodId> = Vec::new();
        if !diff.added_methods.is_empty() || !diff.changed_methods.is_empty() {
            let by_label: HashMap<&str, MethodId> = self
                .method_ids()
                .map(|m| (self.method_label(m), m))
                .collect();
            for label in diff.added_methods.iter().chain(&diff.changed_methods) {
                if let Some(&m) = by_label.get(label.as_str()) {
                    dirty_methods.push(m);
                    dirty_gfs.insert(self.method(m).gf);
                }
            }
        }

        let warm = donor.cache.export_warm(donor);
        let mut inner = self.cache.lock();
        inner.refresh(self);
        for (t, v) in warm.cpl {
            if self.is_live(t) && !dirty_types.contains(&t) && !inner.cpl.contains_key(&t) {
                inner.cpl.insert(t, v);
                report.cpl += 1;
            }
        }
        for (t, v) in warm.ranks {
            if self.is_live(t) && !dirty_types.contains(&t) && !inner.ranks.contains_key(&t) {
                inner.ranks.insert(t, v);
                report.cpl += 1;
            }
        }
        let call_ok = |key: &CallKey| {
            !dirty_gfs.contains(&key.0)
                && key.1.iter().all(|a| match a {
                    CallArg::Object(t) => self.is_live(*t) && !dirty_types.contains(t),
                    _ => true,
                })
        };
        for (k, v) in warm.applicable {
            if call_ok(&k) && !inner.applicable.contains_key(&k) {
                inner.applicable.insert(k, v);
                report.dispatch += 1;
            }
        }
        for (k, v) in warm.ranked {
            if call_ok(&k) && !inner.ranked.contains_key(&k) {
                inner.ranked.insert(k, v);
                report.dispatch += 1;
            }
        }
        for (source, idx) in warm.app_index {
            let clean = self.is_live(source)
                && !dirty_types.contains(&source)
                && dirty_methods.iter().all(|m| {
                    !idx.node_of.contains_key(m) && !self.method_applicable_to_type(*m, source)
                });
            if clean && !inner.app_index.contains_key(&source) {
                inner.app_index.insert(source, idx);
                report.indexes += 1;
            }
        }
        report
    }

    /// The memoized class precedence list of `t`.
    pub(crate) fn cached_cpl(&self, t: TypeId) -> Result<Arc<Vec<TypeId>>> {
        {
            let mut inner = self.cache.lock();
            inner.refresh(self);
            if let Some(v) = inner.cpl.get(&t).map(Arc::clone) {
                inner.cpl_hits += 1;
                return Ok(v);
            }
            inner.cpl_misses += 1;
        }
        // Compute outside the lock: the computation re-enters no cached
        // path, but holding a lock across it would serialize misses.
        let computed = Arc::new(self.compute_cpl(t)?);
        let mut inner = self.cache.lock();
        inner.refresh(self);
        inner.cpl.insert(t, Arc::clone(&computed));
        Ok(computed)
    }

    /// The memoized collapsed specificity ranks of `t`'s CPL.
    pub(crate) fn cached_ranks(&self, t: TypeId) -> Result<Arc<Ranks>> {
        {
            let mut inner = self.cache.lock();
            inner.refresh(self);
            if let Some(v) = inner.ranks.get(&t).map(Arc::clone) {
                inner.cpl_hits += 1;
                return Ok(v);
            }
            inner.cpl_misses += 1;
        }
        let cpl = self.cached_cpl(t)?;
        let computed = Arc::new(self.collapsed_ranks(&cpl));
        let mut inner = self.cache.lock();
        inner.refresh(self);
        inner.ranks.insert(t, Arc::clone(&computed));
        Ok(computed)
    }

    /// The memoized unranked applicable-method set for a call.
    pub(crate) fn cached_applicable(&self, gf: GfId, args: &[CallArg]) -> Arc<Vec<MethodId>> {
        let key: CallKey = (gf, args.to_vec());
        {
            let mut inner = self.cache.lock();
            inner.refresh(self);
            if let Some(v) = inner.applicable.get(&key).map(Arc::clone) {
                inner.dispatch_hits += 1;
                return v;
            }
            inner.dispatch_misses += 1;
        }
        let computed = Arc::new(self.applicable_methods_uncached(gf, args));
        let mut inner = self.cache.lock();
        inner.refresh(self);
        inner.applicable.insert(key, Arc::clone(&computed));
        computed
    }

    /// The memoized ranked applicable-method list for a call.
    pub(crate) fn cached_ranked(&self, gf: GfId, args: &[CallArg]) -> Result<Arc<Vec<MethodId>>> {
        let key: CallKey = (gf, args.to_vec());
        {
            let mut inner = self.cache.lock();
            inner.refresh(self);
            if let Some(v) = inner.ranked.get(&key).map(Arc::clone) {
                inner.dispatch_hits += 1;
                return Ok(v);
            }
            inner.dispatch_misses += 1;
        }
        let applicable = self.cached_applicable(gf, args);
        let ranked =
            self.rank_methods(applicable.as_ref().clone(), args, |s, t| s.cached_ranks(t))?;
        let computed = Arc::new(ranked);
        let mut inner = self.cache.lock();
        inner.refresh(self);
        inner.ranked.insert(key, Arc::clone(&computed));
        Ok(computed)
    }

    /// The memoized applicability condensation index for projections over
    /// `source` (see [`crate::appindex`]). Built once per `(schema
    /// generation, source)` and shared via `Arc`; a schema clone — in
    /// particular every [`crate::SchemaSnapshot`] fork — carries the warm
    /// index, so batch workers never rebuild it.
    pub fn cached_applicability_index(&self, source: TypeId) -> Result<Arc<ApplicabilityIndex>> {
        {
            let mut inner = self.cache.lock();
            inner.refresh(self);
            if let Some(v) = inner.app_index.get(&source).map(Arc::clone) {
                inner.index_hits += 1;
                return Ok(v);
            }
            inner.index_misses += 1;
        }
        // Built outside the lock: the construction re-enters the cache
        // through `call_sites`/`applicable_methods` lookups.
        let computed = {
            let _span = td_telemetry::span("cache", "appindex_build");
            Arc::new(ApplicabilityIndex::build(self, source)?)
        };
        let mut inner = self.cache.lock();
        inner.refresh(self);
        inner.app_index.insert(source, Arc::clone(&computed));
        Ok(computed)
    }

    /// The memoized condensation index for `source` at the requested
    /// precision. `Syntactic` is exactly [`Schema::cached_applicability_index`];
    /// `Semantic` is cached in a parallel per-source map behind the same
    /// generation counter and delta closure, so the refined index is
    /// built once per `(generation, source)` too.
    pub fn cached_applicability_index_at(
        &self,
        source: TypeId,
        precision: AnalysisPrecision,
    ) -> Result<Arc<ApplicabilityIndex>> {
        if precision == AnalysisPrecision::Syntactic {
            return self.cached_applicability_index(source);
        }
        {
            let mut inner = self.cache.lock();
            inner.refresh(self);
            if let Some(v) = inner.app_index_semantic.get(&source).map(Arc::clone) {
                inner.index_hits += 1;
                return Ok(v);
            }
            inner.index_misses += 1;
        }
        let computed = {
            let _span = td_telemetry::span("cache", "appindex_refine");
            Arc::new(ApplicabilityIndex::build_with(self, source, precision)?)
        };
        let mut inner = self.cache.lock();
        inner.refresh(self);
        inner
            .app_index_semantic
            .insert(source, Arc::clone(&computed));
        Ok(computed)
    }

    /// The cached deep-analysis report for `key`, if one was stored under
    /// the current generation. Counts a hit or a miss; the analyses live
    /// in td-analyze, which calls [`Schema::store_analysis_report`] after
    /// computing a missed report.
    pub fn cached_analysis_report(&self, key: &AnalysisKey) -> Option<Arc<LintReport>> {
        let mut inner = self.cache.lock();
        inner.refresh(self);
        match inner.analysis.get(key).map(Arc::clone) {
            Some(v) => {
                inner.analysis_hits += 1;
                Some(v)
            }
            None => {
                inner.analysis_misses += 1;
                None
            }
        }
    }

    /// Stores a deep-analysis report under `key` for the current
    /// generation, so snapshot forks and batch workers share the result.
    pub fn store_analysis_report(&self, key: AnalysisKey, report: Arc<LintReport>) {
        let mut inner = self.cache.lock();
        inner.refresh(self);
        inner.analysis.insert(key, report);
    }

    /// The cached lint report for `key`, if one was stored under the
    /// current generation. Counts a hit or a miss; the analysis itself
    /// lives in td-core, which calls [`Schema::store_lint_report`] after
    /// computing a missed report.
    pub fn cached_lint_report(&self, key: &LintKey) -> Option<Arc<LintReport>> {
        let mut inner = self.cache.lock();
        inner.refresh(self);
        match inner.lint.get(key).map(Arc::clone) {
            Some(v) => {
                inner.lint_hits += 1;
                Some(v)
            }
            None => {
                inner.lint_misses += 1;
                None
            }
        }
    }

    /// Stores a lint report under `key` for the current generation, so
    /// snapshot forks and batch workers share the analysis.
    pub fn store_lint_report(&self, key: LintKey, report: Arc<LintReport>) {
        let mut inner = self.cache.lock();
        inner.refresh(self);
        inner.lint.insert(key, report);
    }
}

#[cfg(test)]
mod tests {
    use crate::methods::{MethodKind, Specializer};
    use crate::schema::Schema;
    use crate::CallArg;

    /// B <= A with one gf `f` having a method on A.
    fn base() -> (
        Schema,
        crate::TypeId,
        crate::TypeId,
        crate::GfId,
        crate::MethodId,
    ) {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let f_a = s
            .add_method(
                f,
                "f_a",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        (s, a, b, f, f_a)
    }

    #[test]
    fn repeated_dispatch_hits_the_cache() {
        let (s, _a, b, f, f_a) = base();
        let args = [CallArg::Object(b)];
        assert_eq!(s.most_specific(f, &args).unwrap(), Some(f_a));
        let cold = s.dispatch_cache_stats();
        assert!(cold.dispatch_misses > 0);
        for _ in 0..10 {
            assert_eq!(s.most_specific(f, &args).unwrap(), Some(f_a));
        }
        let warm = s.dispatch_cache_stats();
        assert_eq!(
            warm.dispatch_misses, cold.dispatch_misses,
            "no new misses when warm"
        );
        assert!(warm.dispatch_hits >= cold.dispatch_hits + 10);
    }

    #[test]
    fn schema_mutation_invalidates_stale_winner() {
        // The invalidation scenario from the issue: a more-specific
        // method added mid-run must win immediately, not be shadowed by a
        // stale cached dispatch table.
        let (mut s, _a, b, f, f_a) = base();
        let args = [CallArg::Object(b)];
        assert_eq!(s.most_specific(f, &args).unwrap(), Some(f_a));
        let gen_before = s.generation();

        let f_b = s
            .add_method(
                f,
                "f_b",
                vec![Specializer::Type(b)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        assert!(
            s.generation() > gen_before,
            "mutation must bump the generation"
        );
        assert_eq!(
            s.most_specific(f, &args).unwrap(),
            Some(f_b),
            "stale cache served a pre-mutation winner"
        );
        assert!(s.dispatch_cache_stats().invalidations >= 1);
    }

    #[test]
    fn hierarchy_rewiring_invalidates_cpls() {
        let (mut s, a, b, _f, _f_a) = base();
        assert_eq!(s.cpl(b).unwrap(), vec![b, a]);
        // FactorState-style rewiring: insert a surrogate above A.
        let hat = s.add_surrogate("^A", a).unwrap();
        s.add_super_highest(a, hat).unwrap();
        assert_eq!(
            s.cpl(b).unwrap(),
            vec![b, a, hat],
            "stale CPL after edge mutation"
        );
    }

    #[test]
    fn clone_carries_warm_entries_but_diverges_after() {
        let (mut s, _a, b, f, f_a) = base();
        let args = [CallArg::Object(b)];
        s.most_specific(f, &args).unwrap();
        let snapshot = s.clone();
        assert!(snapshot.dispatch_cache_stats().dispatch_entries > 0);

        // Mutating the original must not disturb the snapshot.
        let f_b = s
            .add_method(
                f,
                "f_b",
                vec![Specializer::Type(b)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        assert_eq!(s.most_specific(f, &args).unwrap(), Some(f_b));
        assert_eq!(snapshot.most_specific(f, &args).unwrap(), Some(f_a));
    }

    #[test]
    fn delta_saturates_when_fork_counters_lag_the_baseline() {
        // The batch engine computes `fork_final.delta(&baseline)`. When
        // the baseline comes from a schema that raced ahead of the fork —
        // more lookups, then an invalidation — the fork's counters lag it
        // and every subtraction must saturate to zero, not wrap.
        let (s, _a, b, f, _f_a) = base();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        let fork = s.clone();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        s.clear_dispatch_cache();
        let parent = s.dispatch_cache_stats();
        let fork_stats = fork.dispatch_cache_stats();
        assert!(
            fork_stats.dispatch_hits < parent.dispatch_hits
                && fork_stats.invalidations < parent.invalidations,
            "scenario must actually make the fork lag"
        );
        let d = fork_stats.delta(&parent);
        assert_eq!(d.dispatch_hits, 0);
        assert_eq!(d.cpl_hits, 0);
        assert_eq!(d.invalidations, 0);
        // Gauges keep the fork's current residency, untouched by delta.
        assert_eq!(d.dispatch_entries, fork_stats.dispatch_entries);
    }

    #[test]
    fn clear_dispatch_cache_counts_an_invalidation() {
        let (s, _a, b, f, _f_a) = base();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        assert!(s.dispatch_cache_stats().dispatch_entries > 0);
        let before = s.dispatch_cache_stats().invalidations;
        s.clear_dispatch_cache();
        let stats = s.dispatch_cache_stats();
        assert_eq!(stats.dispatch_entries, 0);
        assert_eq!(stats.cpl_entries, 0);
        assert_eq!(stats.invalidations, before + 1);
        assert!(stats.full_flushes >= 1);
    }

    #[test]
    fn mutation_without_entries_is_not_an_invalidation() {
        let mut s = Schema::new();
        s.add_type("A", &[]).unwrap();
        s.add_type("B", &[]).unwrap();
        // Nothing was ever cached, so nothing was invalidated.
        assert_eq!(s.dispatch_cache_stats().invalidations, 0);
    }

    #[test]
    fn applicability_index_is_cached_and_invalidated() {
        let (mut s, _a, b, f, _f_a) = base();
        let cold = s.cached_applicability_index(b).unwrap();
        assert_eq!(s.dispatch_cache_stats().index_misses, 1);
        assert_eq!(s.dispatch_cache_stats().index_entries, 1);
        let warm = s.cached_applicability_index(b).unwrap();
        assert_eq!(s.dispatch_cache_stats().index_hits, 1);
        assert_eq!(warm.universe(), cold.universe());

        // A clone (snapshot) carries the warm index.
        let snapshot = s.clone();
        snapshot.cached_applicability_index(b).unwrap();
        assert_eq!(snapshot.dispatch_cache_stats().index_hits, 2);

        // A mutation flushes it: the new method must appear.
        let before = cold.universe().len();
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let rebuilt = s.cached_applicability_index(b).unwrap();
        assert_eq!(rebuilt.universe().len(), before + 1);
        assert_eq!(s.dispatch_cache_stats().index_misses, 2);
    }

    #[test]
    fn lint_reports_are_cached_and_invalidated() {
        use crate::cache::LintKey;
        use crate::diag::{Diagnostic, LintCode, LintReport};
        use std::sync::Arc;
        let (mut s, _a, b, f, _f_a) = base();
        let key: LintKey = None;
        assert!(s.cached_lint_report(&key).is_none());
        let report = Arc::new(LintReport::new(vec![Diagnostic::new(
            LintCode::DispatchAmbiguity,
            "synthetic",
            vec![],
        )]));
        s.store_lint_report(key.clone(), Arc::clone(&report));
        assert_eq!(s.cached_lint_report(&key).as_deref(), Some(report.as_ref()));
        let stats = s.dispatch_cache_stats();
        assert_eq!(stats.lint_entries, 1);
        assert_eq!(stats.lint_hits, 1);
        assert_eq!(stats.lint_misses, 1);

        // A clone (snapshot) carries the warm report.
        let snapshot = s.clone();
        assert!(snapshot.cached_lint_report(&key).is_some());

        // A mutation flushes it.
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        assert!(s.cached_lint_report(&key).is_none());
        assert_eq!(s.dispatch_cache_stats().lint_entries, 0);
    }

    #[test]
    fn stats_display_mentions_counters() {
        let (s, _a, b, f, _f_a) = base();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        let text = s.dispatch_cache_stats().to_string();
        assert!(text.contains("gen"), "{text}");
        assert!(text.contains("cpl"), "{text}");
        assert!(text.contains("dispatch"), "{text}");
    }

    // ------------------------------------------ delta-invalidation tests

    /// Two disjoint A<=B style towers sharing nothing: mutations on one
    /// side must leave the other side's entries warm.
    fn two_towers() -> (Schema, [crate::TypeId; 4], [crate::GfId; 2]) {
        let mut s = Schema::new();
        let a1 = s.add_type("A1", &[]).unwrap();
        let b1 = s.add_type("B1", &[a1]).unwrap();
        let a2 = s.add_type("A2", &[]).unwrap();
        let b2 = s.add_type("B2", &[a2]).unwrap();
        let f1 = s.add_gf("f1", 1, None).unwrap();
        let f2 = s.add_gf("f2", 1, None).unwrap();
        s.add_method(
            f1,
            "f1_a1",
            vec![Specializer::Type(a1)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        s.add_method(
            f2,
            "f2_a2",
            vec![Specializer::Type(a2)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        (s, [a1, b1, a2, b2], [f1, f2])
    }

    #[test]
    fn unrelated_entries_survive_a_method_addition() {
        let (mut s, [_a1, b1, a2, b2], [f1, f2]) = two_towers();
        s.warm_caches();
        s.most_specific(f1, &[CallArg::Object(b1)]).unwrap();
        s.most_specific(f2, &[CallArg::Object(b2)]).unwrap();
        let warm = s.dispatch_cache_stats();
        assert!(warm.cpl_entries >= 8 && warm.index_entries == 4);

        // A new method on tower 2 must not evict tower 1's entries.
        s.add_method(
            f2,
            "f2_b2",
            vec![Specializer::Type(b2)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let misses_before = s.dispatch_cache_stats();
        s.most_specific(f1, &[CallArg::Object(b1)]).unwrap();
        let after = s.dispatch_cache_stats();
        assert_eq!(
            after.dispatch_misses, misses_before.dispatch_misses,
            "tower-1 dispatch entry must survive a tower-2 method addition"
        );
        assert!(after.delta_survivals > 0, "{after:?}");
        assert!(after.delta_evictions > 0, "{after:?}");
        // Tower-1's index survived; b2's was evicted (the new method
        // specializes b2, so only types at-or-below b2 can admit it —
        // even a2's index stays warm).
        s.cached_applicability_index(b1).unwrap();
        s.cached_applicability_index(a2).unwrap();
        assert_eq!(
            s.dispatch_cache_stats().index_misses,
            after.index_misses,
            "tower-1 and a2 indexes must still be warm"
        );
        s.cached_applicability_index(b2).unwrap();
        assert_eq!(
            s.dispatch_cache_stats().index_misses,
            after.index_misses + 1,
            "b2's index must have been evicted"
        );
        assert_eq!(s.dispatch_cache_stats().full_flushes, 0);
    }

    #[test]
    fn unrelated_cpls_survive_edge_rewiring() {
        let (mut s, [a1, b1, a2, b2], _gfs) = two_towers();
        s.cpl(b1).unwrap();
        s.cpl(b2).unwrap();
        s.cpl(a1).unwrap();
        s.cpl(a2).unwrap();
        // Rewire tower 2: a surrogate above A2.
        let hat = s.add_surrogate("^A2", a2).unwrap();
        s.add_super_highest(a2, hat).unwrap();
        let before = s.dispatch_cache_stats();
        s.cpl(b1).unwrap();
        s.cpl(a1).unwrap();
        assert_eq!(
            s.dispatch_cache_stats().cpl_misses,
            before.cpl_misses,
            "tower-1 CPLs must survive tower-2 rewiring"
        );
        assert_eq!(s.cpl(b2).unwrap(), vec![b2, a2, hat]);
        assert_eq!(
            s.dispatch_cache_stats().cpl_misses,
            before.cpl_misses + 1,
            "tower-2 CPL was evicted and recomputed"
        );
    }

    #[test]
    fn method_touch_evicts_only_indexes_that_see_it() {
        let (mut s, [_a1, b1, _a2, b2], [f1, _f2]) = two_towers();
        s.cached_applicability_index(b1).unwrap();
        s.cached_applicability_index(b2).unwrap();
        let before = s.dispatch_cache_stats();
        assert_eq!(before.index_entries, 2);
        // Touch tower 1's method: b1's index contains it, b2's does not.
        let m = s.method_by_label("f1_a1").unwrap();
        s.method_mut(m).result = None;
        let _ = f1;
        s.cached_applicability_index(b2).unwrap();
        assert_eq!(
            s.dispatch_cache_stats().index_misses,
            before.index_misses,
            "untouched-tower index survives"
        );
        s.cached_applicability_index(b1).unwrap();
        assert_eq!(
            s.dispatch_cache_stats().index_misses,
            before.index_misses + 1,
            "touched-tower index was evicted"
        );
    }

    #[test]
    fn type_and_attr_additions_keep_everything_warm() {
        let (mut s, [_a1, b1, _a2, _b2], [f1, _f2]) = two_towers();
        s.warm_caches();
        s.most_specific(f1, &[CallArg::Object(b1)]).unwrap();
        let warm = s.dispatch_cache_stats();
        // Leaf additions: a fresh type and an attribute on it.
        let c = s.add_type("C", &[]).unwrap();
        s.add_attr("c_x", crate::ValueType::INT, c).unwrap();
        s.most_specific(f1, &[CallArg::Object(b1)]).unwrap();
        s.cpl(b1).unwrap();
        s.cached_applicability_index(b1).unwrap();
        let after = s.dispatch_cache_stats();
        assert_eq!(after.cpl_misses, warm.cpl_misses);
        assert_eq!(after.dispatch_misses, warm.dispatch_misses);
        assert_eq!(after.index_misses, warm.index_misses);
        assert_eq!(after.invalidations, warm.invalidations, "nothing evicted");
    }

    #[test]
    fn carry_warm_from_preserves_clean_entries_across_a_reparse() {
        use crate::delta::diff_schemas;
        use crate::parse_schema;
        let old_text = "type A { x: int }\ntype B : A { y: int }\naccessors x\naccessors y\n";
        let new_text = format!("{old_text}type C : B {{ z: int }}\naccessors z\n");
        let old = parse_schema(old_text).unwrap();
        old.warm_caches();
        let new = parse_schema(&new_text).unwrap();
        let diff = diff_schemas(&old, &new);
        assert!(diff.ids_stable);
        let report = new.carry_warm_from(&old, &diff);
        // A and B's rank tables and indexes carry (their CPLs are already
        // warm on the new schema — parse-time validation computes every
        // CPL — so the carry skips them rather than overwrite). The new
        // accessors of z specialize C, which is below B, so they reach
        // neither A's nor B's index universe.
        assert!(report.cpl >= 2, "{report:?}");
        assert!(report.indexes >= 2, "{report:?}");
        let before = new.dispatch_cache_stats();
        let a = new.type_id("A").unwrap();
        new.cpl(a).unwrap();
        new.cached_ranks(a).unwrap();
        new.cached_applicability_index(a).unwrap();
        let after = new.dispatch_cache_stats();
        assert_eq!(after.cpl_misses, before.cpl_misses, "carried ranks hit");
        assert_eq!(after.index_misses, before.index_misses, "carried index");
        // The genuinely new type builds its index fresh.
        let c = new.type_id("C").unwrap();
        new.cached_applicability_index(c).unwrap();
        assert_eq!(
            new.dispatch_cache_stats().index_misses,
            before.index_misses + 1
        );
    }

    #[test]
    fn carry_refuses_unstable_ids() {
        use crate::delta::diff_schemas;
        use crate::parse_schema;
        let old = parse_schema("type A { x: int }\ntype B { y: int }\n").unwrap();
        old.warm_caches();
        // B removed: surviving ids shift nothing here, but the removal
        // breaks stability and must disable the carry wholesale.
        let new = parse_schema("type A { x: int }\n").unwrap();
        let diff = diff_schemas(&old, &new);
        assert!(!diff.ids_stable);
        assert_eq!(new.carry_warm_from(&old, &diff).total(), 0);
    }
}
