//! The dispatch acceleration layer: memoized CPLs and a generational
//! dispatch-table cache.
//!
//! Multi-method dispatch is the repository's hot loop. The I2 invariant
//! replay (`td-core`) re-dispatches every pre-existing call tuple after a
//! refactoring pass, and the `IsApplicable` call-graph walk re-scans a
//! generic function's methods at every call site. Uncached, each
//! `most_specific` call recomputes class precedence lists (a topological
//! sort over the ancestor DAG, per argument) and rescans every method of
//! the generic function — O(calls × methods × hierarchy). The standard fix
//! in the multi-method literature is dispatch-table precomputation; this
//! module implements the lazy variant of it:
//!
//! * **CPL memo** — `cpl(t)` and the collapsed specificity ranks derived
//!   from it are computed once per type per schema *generation* and shared
//!   via `Arc`.
//! * **Dispatch tables** — per `(GfId, argument-type-vector)` the cache
//!   stores both the unranked applicable-method set (consumed by the
//!   `IsApplicable` walk) and the ranked list (consumed by
//!   `rank_applicable`/`most_specific`).
//! * **Generational invalidation** — every schema mutation (type, edge,
//!   attribute or method addition; any `&mut` access to a method, type
//!   node or attribute, which is how the `FactorState`/`FactorMethods`/
//!   `Augment` passes rewire things) bumps a monotonic generation counter.
//!   Cached entries are tagged with the generation they were built under;
//!   the first read after a mutation observes the mismatch and flushes
//!   the maps, so a refactoring pass can never serve a pre-refactor
//!   dispatch result. Invalidation itself is O(1) — the flush happens
//!   lazily on the read side.
//!
//! The cache lives inside [`Schema`] behind a `Mutex` (keeping `Schema:
//! Send + Sync`), is cloned with the schema (a clone is a snapshot, so
//! the warm entries stay valid), and is observable: hit/miss/invalidation
//! counters are exported as [`DispatchCacheStats`] through
//! [`Schema::dispatch_cache_stats`], the CLI `explain` path and the
//! invariant report.

use crate::appindex::ApplicabilityIndex;
use crate::diag::LintReport;
use crate::dispatch::CallArg;
use crate::error::Result;
use crate::ids::{AttrId, GfId, MethodId, TypeId};
use crate::schema::Schema;
use crate::stats::DispatchCacheStats;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-type specificity ranks with surrogate collapse (see
/// `Schema::collapsed_ranks`).
pub(crate) type Ranks = Vec<(TypeId, usize)>;

/// Key of the per-call dispatch tables.
pub(crate) type CallKey = (GfId, Vec<CallArg>);

/// Key of the cached lint reports: `None` is the schema-wide analysis,
/// `Some((source, projection))` the per-request projection-safety part.
/// The projection list is kept sorted by the writer (td-core's lint pass
/// sorts before storing).
pub type LintKey = Option<(TypeId, Vec<AttrId>)>;

#[derive(Debug, Clone, Default)]
struct CacheInner {
    /// Monotonic schema-mutation counter.
    generation: u64,
    /// Generation the maps below were populated under.
    entries_generation: u64,
    cpl: HashMap<TypeId, Arc<Vec<TypeId>>>,
    ranks: HashMap<TypeId, Arc<Ranks>>,
    applicable: HashMap<CallKey, Arc<Vec<MethodId>>>,
    ranked: HashMap<CallKey, Arc<Vec<MethodId>>>,
    /// Applicability condensation indexes, keyed by projection source
    /// (the call graph and its footprints depend on the source type but
    /// not on the projection list — see [`crate::appindex`]).
    app_index: HashMap<TypeId, Arc<ApplicabilityIndex>>,
    /// Lint reports, keyed by [`LintKey`]. The analysis itself lives in
    /// td-core; the model only stores the results so every fork of a
    /// [`crate::SchemaSnapshot`] shares them generationally.
    lint: HashMap<LintKey, Arc<LintReport>>,
    cpl_hits: u64,
    cpl_misses: u64,
    dispatch_hits: u64,
    dispatch_misses: u64,
    index_hits: u64,
    index_misses: u64,
    lint_hits: u64,
    lint_misses: u64,
    invalidations: u64,
}

impl CacheInner {
    /// Flushes stale entries if the schema has mutated since they were
    /// built. Called at the top of every cached read.
    fn refresh(&mut self) {
        if self.entries_generation != self.generation {
            let had_entries = !self.cpl.is_empty()
                || !self.ranks.is_empty()
                || !self.applicable.is_empty()
                || !self.ranked.is_empty()
                || !self.app_index.is_empty()
                || !self.lint.is_empty();
            self.cpl.clear();
            self.ranks.clear();
            self.applicable.clear();
            self.ranked.clear();
            self.app_index.clear();
            self.lint.clear();
            self.entries_generation = self.generation;
            if had_entries {
                self.invalidations += 1;
            }
        }
    }
}

/// The interior-mutable cache carried by every [`Schema`].
///
/// All read paths go through `&Schema`, so the cache is populated behind
/// a `Mutex`; mutation paths have `&mut Schema` and bump the generation
/// without contention via `get_mut`.
pub struct DispatchCache {
    inner: Mutex<CacheInner>,
}

impl Default for DispatchCache {
    fn default() -> Self {
        DispatchCache {
            inner: Mutex::new(CacheInner::default()),
        }
    }
}

impl Clone for DispatchCache {
    fn clone(&self) -> Self {
        // A schema clone is a snapshot: carrying the warm entries over is
        // sound because they were built from the state being cloned.
        DispatchCache {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

impl std::fmt::Debug for DispatchCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("DispatchCache")
            .field("generation", &inner.generation)
            .field("cpl_entries", &inner.cpl.len())
            .field(
                "dispatch_entries",
                &(inner.applicable.len() + inner.ranked.len()),
            )
            .finish()
    }
}

impl DispatchCache {
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // A poisoned lock only means a panic mid-insert; the maps are
        // still structurally sound, so recover rather than propagate.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a schema mutation. Stale entries are flushed lazily by the
    /// next read, so this is O(1).
    pub(crate) fn bump(&mut self) {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        inner.generation += 1;
    }

    /// Clones the warm entry maps for snapshot serialization (stats
    /// counters stay behind; `Arc` clones make this cheap). Entries are
    /// only exported if they are current for the schema's generation.
    pub(crate) fn export_warm(&self) -> WarmCaches {
        let mut inner = self.lock();
        inner.refresh();
        WarmCaches {
            cpl: inner.cpl.clone(),
            ranks: inner.ranks.clone(),
            applicable: inner.applicable.clone(),
            ranked: inner.ranked.clone(),
            app_index: inner.app_index.clone(),
        }
    }

    /// Installs deserialized warm entries, tagged as current for the
    /// schema's present generation so the first read serves them instead
    /// of flushing (the snapshot loader's cache-restore step).
    pub(crate) fn import_warm(&mut self, warm: WarmCaches) {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        inner.cpl = warm.cpl;
        inner.ranks = warm.ranks;
        inner.applicable = warm.applicable;
        inner.ranked = warm.ranked;
        inner.app_index = warm.app_index;
        inner.entries_generation = inner.generation;
    }
}

/// The serializable subset of the dispatch cache: every warm map except
/// the lint reports (lint findings are presentation-layer and re-derive
/// quickly; see the snapshot module docs).
pub(crate) struct WarmCaches {
    pub(crate) cpl: HashMap<TypeId, Arc<Vec<TypeId>>>,
    pub(crate) ranks: HashMap<TypeId, Arc<Ranks>>,
    pub(crate) applicable: HashMap<CallKey, Arc<Vec<MethodId>>>,
    pub(crate) ranked: HashMap<CallKey, Arc<Vec<MethodId>>>,
    pub(crate) app_index: HashMap<TypeId, Arc<ApplicabilityIndex>>,
}

impl Schema {
    /// The schema's mutation generation. Every mutating operation (adding
    /// types, attributes, methods or edges; any `&mut` access to a node)
    /// increments it; cached dispatch results never cross generations.
    pub fn generation(&self) -> u64 {
        self.cache.lock().generation
    }

    /// A snapshot of the dispatch-cache counters.
    pub fn dispatch_cache_stats(&self) -> DispatchCacheStats {
        let inner = self.cache.lock();
        DispatchCacheStats {
            generation: inner.generation,
            cpl_hits: inner.cpl_hits,
            cpl_misses: inner.cpl_misses,
            dispatch_hits: inner.dispatch_hits,
            dispatch_misses: inner.dispatch_misses,
            index_hits: inner.index_hits,
            index_misses: inner.index_misses,
            lint_hits: inner.lint_hits,
            lint_misses: inner.lint_misses,
            invalidations: inner.invalidations,
            cpl_entries: inner.cpl.len() + inner.ranks.len(),
            dispatch_entries: inner.applicable.len() + inner.ranked.len(),
            index_entries: inner.app_index.len(),
            lint_entries: inner.lint.len(),
        }
    }

    /// Warms the derivation caches for every live type: CPL memo, rank
    /// tables and the applicability condensation index. Best-effort —
    /// types whose linearization or index build fails (inconsistent
    /// precedence, dataflow errors) are skipped; the failure resurfaces
    /// on the request that actually needs them. `tdv snapshot save` and
    /// the server's snapshot persistence call this so a reloaded schema
    /// starts with every cache hot.
    pub fn warm_caches(&self) {
        for t in self.live_type_ids() {
            let _ = self.cpl(t);
            let _ = self.cached_ranks(t);
            let _ = self.cached_applicability_index(t);
        }
    }

    /// Drops every cached entry (counted as an invalidation if any entry
    /// existed). Benchmarks use this to measure cold dispatch.
    pub fn clear_dispatch_cache(&self) {
        let mut inner = self.cache.lock();
        inner.generation += 1;
        inner.refresh();
    }

    /// The memoized class precedence list of `t`.
    pub(crate) fn cached_cpl(&self, t: TypeId) -> Result<Arc<Vec<TypeId>>> {
        {
            let mut inner = self.cache.lock();
            inner.refresh();
            if let Some(v) = inner.cpl.get(&t).map(Arc::clone) {
                inner.cpl_hits += 1;
                return Ok(v);
            }
            inner.cpl_misses += 1;
        }
        // Compute outside the lock: the computation re-enters no cached
        // path, but holding a lock across it would serialize misses.
        let computed = Arc::new(self.compute_cpl(t)?);
        let mut inner = self.cache.lock();
        inner.refresh();
        inner.cpl.insert(t, Arc::clone(&computed));
        Ok(computed)
    }

    /// The memoized collapsed specificity ranks of `t`'s CPL.
    pub(crate) fn cached_ranks(&self, t: TypeId) -> Result<Arc<Ranks>> {
        {
            let mut inner = self.cache.lock();
            inner.refresh();
            if let Some(v) = inner.ranks.get(&t).map(Arc::clone) {
                inner.cpl_hits += 1;
                return Ok(v);
            }
            inner.cpl_misses += 1;
        }
        let cpl = self.cached_cpl(t)?;
        let computed = Arc::new(self.collapsed_ranks(&cpl));
        let mut inner = self.cache.lock();
        inner.refresh();
        inner.ranks.insert(t, Arc::clone(&computed));
        Ok(computed)
    }

    /// The memoized unranked applicable-method set for a call.
    pub(crate) fn cached_applicable(&self, gf: GfId, args: &[CallArg]) -> Arc<Vec<MethodId>> {
        let key: CallKey = (gf, args.to_vec());
        {
            let mut inner = self.cache.lock();
            inner.refresh();
            if let Some(v) = inner.applicable.get(&key).map(Arc::clone) {
                inner.dispatch_hits += 1;
                return v;
            }
            inner.dispatch_misses += 1;
        }
        let computed = Arc::new(self.applicable_methods_uncached(gf, args));
        let mut inner = self.cache.lock();
        inner.refresh();
        inner.applicable.insert(key, Arc::clone(&computed));
        computed
    }

    /// The memoized ranked applicable-method list for a call.
    pub(crate) fn cached_ranked(&self, gf: GfId, args: &[CallArg]) -> Result<Arc<Vec<MethodId>>> {
        let key: CallKey = (gf, args.to_vec());
        {
            let mut inner = self.cache.lock();
            inner.refresh();
            if let Some(v) = inner.ranked.get(&key).map(Arc::clone) {
                inner.dispatch_hits += 1;
                return Ok(v);
            }
            inner.dispatch_misses += 1;
        }
        let applicable = self.cached_applicable(gf, args);
        let ranked =
            self.rank_methods(applicable.as_ref().clone(), args, |s, t| s.cached_ranks(t))?;
        let computed = Arc::new(ranked);
        let mut inner = self.cache.lock();
        inner.refresh();
        inner.ranked.insert(key, Arc::clone(&computed));
        Ok(computed)
    }

    /// The memoized applicability condensation index for projections over
    /// `source` (see [`crate::appindex`]). Built once per `(schema
    /// generation, source)` and shared via `Arc`; a schema clone — in
    /// particular every [`crate::SchemaSnapshot`] fork — carries the warm
    /// index, so batch workers never rebuild it.
    pub fn cached_applicability_index(&self, source: TypeId) -> Result<Arc<ApplicabilityIndex>> {
        {
            let mut inner = self.cache.lock();
            inner.refresh();
            if let Some(v) = inner.app_index.get(&source).map(Arc::clone) {
                inner.index_hits += 1;
                return Ok(v);
            }
            inner.index_misses += 1;
        }
        // Built outside the lock: the construction re-enters the cache
        // through `call_sites`/`applicable_methods` lookups.
        let computed = {
            let _span = td_telemetry::span("cache", "appindex_build");
            Arc::new(ApplicabilityIndex::build(self, source)?)
        };
        let mut inner = self.cache.lock();
        inner.refresh();
        inner.app_index.insert(source, Arc::clone(&computed));
        Ok(computed)
    }

    /// The cached lint report for `key`, if one was stored under the
    /// current generation. Counts a hit or a miss; the analysis itself
    /// lives in td-core, which calls [`Schema::store_lint_report`] after
    /// computing a missed report.
    pub fn cached_lint_report(&self, key: &LintKey) -> Option<Arc<LintReport>> {
        let mut inner = self.cache.lock();
        inner.refresh();
        match inner.lint.get(key).map(Arc::clone) {
            Some(v) => {
                inner.lint_hits += 1;
                Some(v)
            }
            None => {
                inner.lint_misses += 1;
                None
            }
        }
    }

    /// Stores a lint report under `key` for the current generation, so
    /// snapshot forks and batch workers share the analysis.
    pub fn store_lint_report(&self, key: LintKey, report: Arc<LintReport>) {
        let mut inner = self.cache.lock();
        inner.refresh();
        inner.lint.insert(key, report);
    }
}

#[cfg(test)]
mod tests {
    use crate::methods::{MethodKind, Specializer};
    use crate::schema::Schema;
    use crate::CallArg;

    /// B <= A with one gf `f` having a method on A.
    fn base() -> (
        Schema,
        crate::TypeId,
        crate::TypeId,
        crate::GfId,
        crate::MethodId,
    ) {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let f_a = s
            .add_method(
                f,
                "f_a",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        (s, a, b, f, f_a)
    }

    #[test]
    fn repeated_dispatch_hits_the_cache() {
        let (s, _a, b, f, f_a) = base();
        let args = [CallArg::Object(b)];
        assert_eq!(s.most_specific(f, &args).unwrap(), Some(f_a));
        let cold = s.dispatch_cache_stats();
        assert!(cold.dispatch_misses > 0);
        for _ in 0..10 {
            assert_eq!(s.most_specific(f, &args).unwrap(), Some(f_a));
        }
        let warm = s.dispatch_cache_stats();
        assert_eq!(
            warm.dispatch_misses, cold.dispatch_misses,
            "no new misses when warm"
        );
        assert!(warm.dispatch_hits >= cold.dispatch_hits + 10);
    }

    #[test]
    fn schema_mutation_invalidates_stale_winner() {
        // The invalidation scenario from the issue: a more-specific
        // method added mid-run must win immediately, not be shadowed by a
        // stale cached dispatch table.
        let (mut s, _a, b, f, f_a) = base();
        let args = [CallArg::Object(b)];
        assert_eq!(s.most_specific(f, &args).unwrap(), Some(f_a));
        let gen_before = s.generation();

        let f_b = s
            .add_method(
                f,
                "f_b",
                vec![Specializer::Type(b)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        assert!(
            s.generation() > gen_before,
            "mutation must bump the generation"
        );
        assert_eq!(
            s.most_specific(f, &args).unwrap(),
            Some(f_b),
            "stale cache served a pre-mutation winner"
        );
        assert!(s.dispatch_cache_stats().invalidations >= 1);
    }

    #[test]
    fn hierarchy_rewiring_invalidates_cpls() {
        let (mut s, a, b, _f, _f_a) = base();
        assert_eq!(s.cpl(b).unwrap(), vec![b, a]);
        // FactorState-style rewiring: insert a surrogate above A.
        let hat = s.add_surrogate("^A", a).unwrap();
        s.add_super_highest(a, hat).unwrap();
        assert_eq!(
            s.cpl(b).unwrap(),
            vec![b, a, hat],
            "stale CPL after edge mutation"
        );
    }

    #[test]
    fn clone_carries_warm_entries_but_diverges_after() {
        let (mut s, _a, b, f, f_a) = base();
        let args = [CallArg::Object(b)];
        s.most_specific(f, &args).unwrap();
        let snapshot = s.clone();
        assert!(snapshot.dispatch_cache_stats().dispatch_entries > 0);

        // Mutating the original must not disturb the snapshot.
        let f_b = s
            .add_method(
                f,
                "f_b",
                vec![Specializer::Type(b)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        assert_eq!(s.most_specific(f, &args).unwrap(), Some(f_b));
        assert_eq!(snapshot.most_specific(f, &args).unwrap(), Some(f_a));
    }

    #[test]
    fn delta_saturates_when_fork_counters_lag_the_baseline() {
        // The batch engine computes `fork_final.delta(&baseline)`. When
        // the baseline comes from a schema that raced ahead of the fork —
        // more lookups, then an invalidation — the fork's counters lag it
        // and every subtraction must saturate to zero, not wrap.
        let (s, _a, b, f, _f_a) = base();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        let fork = s.clone();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        s.clear_dispatch_cache();
        let parent = s.dispatch_cache_stats();
        let fork_stats = fork.dispatch_cache_stats();
        assert!(
            fork_stats.dispatch_hits < parent.dispatch_hits
                && fork_stats.invalidations < parent.invalidations,
            "scenario must actually make the fork lag"
        );
        let d = fork_stats.delta(&parent);
        assert_eq!(d.dispatch_hits, 0);
        assert_eq!(d.cpl_hits, 0);
        assert_eq!(d.invalidations, 0);
        // Gauges keep the fork's current residency, untouched by delta.
        assert_eq!(d.dispatch_entries, fork_stats.dispatch_entries);
    }

    #[test]
    fn clear_dispatch_cache_counts_an_invalidation() {
        let (s, _a, b, f, _f_a) = base();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        assert!(s.dispatch_cache_stats().dispatch_entries > 0);
        let before = s.dispatch_cache_stats().invalidations;
        s.clear_dispatch_cache();
        let stats = s.dispatch_cache_stats();
        assert_eq!(stats.dispatch_entries, 0);
        assert_eq!(stats.cpl_entries, 0);
        assert_eq!(stats.invalidations, before + 1);
    }

    #[test]
    fn mutation_without_entries_is_not_an_invalidation() {
        let mut s = Schema::new();
        s.add_type("A", &[]).unwrap();
        s.add_type("B", &[]).unwrap();
        // Nothing was ever cached, so nothing was invalidated.
        assert_eq!(s.dispatch_cache_stats().invalidations, 0);
    }

    #[test]
    fn applicability_index_is_cached_and_invalidated() {
        let (mut s, _a, b, f, _f_a) = base();
        let cold = s.cached_applicability_index(b).unwrap();
        assert_eq!(s.dispatch_cache_stats().index_misses, 1);
        assert_eq!(s.dispatch_cache_stats().index_entries, 1);
        let warm = s.cached_applicability_index(b).unwrap();
        assert_eq!(s.dispatch_cache_stats().index_hits, 1);
        assert_eq!(warm.universe(), cold.universe());

        // A clone (snapshot) carries the warm index.
        let snapshot = s.clone();
        snapshot.cached_applicability_index(b).unwrap();
        assert_eq!(snapshot.dispatch_cache_stats().index_hits, 2);

        // A mutation flushes it: the new method must appear.
        let before = cold.universe().len();
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let rebuilt = s.cached_applicability_index(b).unwrap();
        assert_eq!(rebuilt.universe().len(), before + 1);
        assert_eq!(s.dispatch_cache_stats().index_misses, 2);
    }

    #[test]
    fn lint_reports_are_cached_and_invalidated() {
        use crate::cache::LintKey;
        use crate::diag::{Diagnostic, LintCode, LintReport};
        use std::sync::Arc;
        let (mut s, _a, b, f, _f_a) = base();
        let key: LintKey = None;
        assert!(s.cached_lint_report(&key).is_none());
        let report = Arc::new(LintReport::new(vec![Diagnostic::new(
            LintCode::DispatchAmbiguity,
            "synthetic",
            vec![],
        )]));
        s.store_lint_report(key.clone(), Arc::clone(&report));
        assert_eq!(s.cached_lint_report(&key).as_deref(), Some(report.as_ref()));
        let stats = s.dispatch_cache_stats();
        assert_eq!(stats.lint_entries, 1);
        assert_eq!(stats.lint_hits, 1);
        assert_eq!(stats.lint_misses, 1);

        // A clone (snapshot) carries the warm report.
        let snapshot = s.clone();
        assert!(snapshot.cached_lint_report(&key).is_some());

        // A mutation flushes it.
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        assert!(s.cached_lint_report(&key).is_none());
        assert_eq!(s.dispatch_cache_stats().lint_entries, 0);
    }

    #[test]
    fn stats_display_mentions_counters() {
        let (s, _a, b, f, _f_a) = base();
        s.most_specific(f, &[CallArg::Object(b)]).unwrap();
        let text = s.dispatch_cache_stats().to_string();
        assert!(text.contains("gen"), "{text}");
        assert!(text.contains("cpl"), "{text}");
        assert!(text.contains("dispatch"), "{text}");
    }
}
