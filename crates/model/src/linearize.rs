//! Class precedence lists (CPLs).
//!
//! The paper assumes "a precedence relationship among the direct supertypes
//! of a type" and defers method-precedence mechanics to its reference \[2\]
//! (Agrawal, DeMichiel & Lindsay, OOPSLA '91). We realize that relationship
//! with the standard CLOS linearization: a topological sort of
//!
//! * each type preceding its direct supertypes, and
//! * direct supertypes pairwise ordered by their local precedence,
//!
//! with CLOS's determinism rule for ties (prefer the candidate having a
//! direct subtype *rightmost* in the list built so far).
//!
//! The CPL is what makes surrogate insertion transparent: `FactorState`
//! inserts `T̂` as the highest-precedence direct supertype of `T`, so
//! `cpl(T)` becomes `[T, T̂, …unchanged relative order…]` and every lookup
//! that previously found something at `T` finds the same thing at `T` or
//! `T̂` in the same relative position.

use crate::error::{ModelError, Result};
use crate::ids::TypeId;
use crate::schema::Schema;

impl Schema {
    /// The class precedence list of `t`: `t` first, then every supertype,
    /// ordered most-specific-first.
    ///
    /// Memoized: computed once per type per schema generation (see
    /// [`crate::cache`]); any schema mutation invalidates the memo.
    ///
    /// Returns [`ModelError::InconsistentPrecedence`] when the local
    /// precedence orders cannot be reconciled into a total order.
    pub fn cpl(&self, t: TypeId) -> Result<Vec<TypeId>> {
        Ok(self.cached_cpl(t)?.as_ref().clone())
    }

    /// [`Schema::cpl`] bypassing the memo (always recomputed). Kept
    /// public as the ground truth for cache-equivalence tests.
    pub fn cpl_uncached(&self, t: TypeId) -> Result<Vec<TypeId>> {
        self.compute_cpl(t)
    }

    /// The linearization algorithm itself (uncached).
    pub(crate) fn compute_cpl(&self, t: TypeId) -> Result<Vec<TypeId>> {
        self.check_type(t)?;
        let members = self.ancestors_inclusive(t);
        // Pair (a, b) means `a` must precede `b` in the CPL.
        let mut constraints: Vec<(TypeId, TypeId)> = Vec::new();
        for &c in &members {
            let supers: Vec<TypeId> = self.type_(c).super_ids().collect();
            if let Some(&first) = supers.first() {
                constraints.push((c, first));
            }
            for w in supers.windows(2) {
                constraints.push((w[0], w[1]));
            }
        }

        let mut remaining: Vec<TypeId> = members.clone();
        let mut out: Vec<TypeId> = Vec::with_capacity(members.len());
        while !remaining.is_empty() {
            // Candidates: remaining types with no remaining predecessor.
            let candidates: Vec<TypeId> = remaining
                .iter()
                .copied()
                .filter(|&c| {
                    !constraints
                        .iter()
                        .any(|&(p, q)| q == c && remaining.contains(&p))
                })
                .collect();
            let chosen = match candidates.len() {
                0 => return Err(ModelError::InconsistentPrecedence(t)),
                1 => candidates[0],
                _ => {
                    // CLOS rule: pick the candidate with a direct subtype
                    // rightmost in the partial CPL.
                    let mut best = candidates[0];
                    let mut best_pos: isize = -1;
                    for &c in &candidates {
                        let pos = out
                            .iter()
                            .rposition(|&placed| self.type_(placed).super_ids().any(|s| s == c))
                            .map(|p| p as isize)
                            .unwrap_or(-1);
                        if pos > best_pos {
                            best_pos = pos;
                            best = c;
                        }
                    }
                    best
                }
            };
            out.push(chosen);
            remaining.retain(|&c| c != chosen);
        }
        Ok(out)
    }

    /// Position of `sup` in `cpl(t)`, if present. Lower = more specific.
    /// Served from the CPL memo without cloning the list.
    pub fn cpl_position(&self, t: TypeId, sup: TypeId) -> Result<Option<usize>> {
        Ok(self.cached_cpl(t)?.iter().position(|&x| x == sup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let c = s.add_type("C", &[b]).unwrap();
        assert_eq!(s.cpl(c).unwrap(), vec![c, b, a]);
    }

    #[test]
    fn diamond_respects_local_order() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let c = s.add_type("C", &[a]).unwrap();
        let d = s.add_type("D", &[b, c]).unwrap();
        assert_eq!(s.cpl(d).unwrap(), vec![d, b, c, a]);
        let e = s.add_type("E", &[c, b]).unwrap();
        assert_eq!(s.cpl(e).unwrap(), vec![e, c, b, a]);
    }

    #[test]
    fn surrogate_inserted_at_front_preserves_suffix_order() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let c = s.add_type("C", &[b]).unwrap();
        let before = s.cpl(c).unwrap();
        let hat = s.add_surrogate("^B", b).unwrap();
        s.add_super_highest(b, hat).unwrap();
        let after = s.cpl(c).unwrap();
        // `after` is `before` with `hat` spliced in right after b.
        let filtered: Vec<TypeId> = after.iter().copied().filter(|&x| x != hat).collect();
        assert_eq!(filtered, before);
        let b_pos = after.iter().position(|&x| x == b).unwrap();
        assert_eq!(after[b_pos + 1], hat);
    }

    #[test]
    fn paper_fig3_cpl_of_a() {
        // A <= [C(1), B(2)], C <= [F(1), E(2)], B <= [D(1), E(2)],
        // F <= [H], E <= [G(1), H(2)].
        let mut s = Schema::new();
        let d = s.add_type("D", &[]).unwrap();
        let g = s.add_type("G", &[]).unwrap();
        let h = s.add_type("H", &[]).unwrap();
        let f = s.add_type("F", &[h]).unwrap();
        let e = s.add_type("E", &[g, h]).unwrap();
        let c = s.add_type("C", &[f, e]).unwrap();
        let b = s.add_type("B", &[d, e]).unwrap();
        let a = s.add_type("A", &[c, b]).unwrap();
        let cpl = s.cpl(a).unwrap();
        assert_eq!(cpl[0], a);
        assert_eq!(cpl[1], c); // C precedes B (local order at A)
                               // Every constraint: each type precedes its direct supers.
        let pos = |x: TypeId| cpl.iter().position(|&y| y == x).unwrap();
        assert!(pos(c) < pos(f) && pos(c) < pos(e));
        assert!(pos(b) < pos(d) && pos(b) < pos(e));
        assert!(pos(f) < pos(h));
        assert!(pos(e) < pos(g) && pos(g) < pos(h)); // local order at E
        assert_eq!(cpl.len(), 8);
    }

    #[test]
    fn inconsistent_precedence_detected() {
        // X <= [P, Q]; Y <= [Q, P]; Z <= [X, Y] has no consistent order
        // for P and Q.
        let mut s = Schema::new();
        let p = s.add_type("P", &[]).unwrap();
        let q = s.add_type("Q", &[]).unwrap();
        let x = s.add_type("X", &[p, q]).unwrap();
        let y = s.add_type("Y", &[q, p]).unwrap();
        let z = s.add_type("Z", &[x, y]).unwrap();
        assert!(matches!(
            s.cpl(z),
            Err(ModelError::InconsistentPrecedence(_))
        ));
        // The sub-hierarchies alone are fine.
        assert!(s.cpl(x).is_ok());
        assert!(s.cpl(y).is_ok());
    }

    #[test]
    fn cpl_position_queries() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        assert_eq!(s.cpl_position(b, a).unwrap(), Some(1));
        assert_eq!(s.cpl_position(b, b).unwrap(), Some(0));
        assert_eq!(s.cpl_position(a, b).unwrap(), None);
    }
}
