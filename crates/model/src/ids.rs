//! Dense, copyable identifiers for every entity in a [`crate::Schema`].
//!
//! All identifiers are newtypes over `u32` indexing arenas inside the schema.
//! They are cheap to copy, hash and order, and deliberately carry no
//! lifetime or reference — the schema is the single source of truth and the
//! projection algorithms mutate it heavily.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw arena index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("arena index overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies a type (class) in the hierarchy.
    TypeId,
    "T"
);
id_newtype!(
    /// Identifies a named attribute. Attribute names are globally unique
    /// (a simplifying assumption stated in §2 of the paper).
    AttrId,
    "a"
);
id_newtype!(
    /// Identifies a generic function (a named operation with a set of
    /// type-specific methods).
    GfId,
    "g"
);
id_newtype!(
    /// Identifies one method of a generic function.
    MethodId,
    "m"
);
id_newtype!(
    /// Identifies a local variable within one method body.
    VarId,
    "v"
);
id_newtype!(
    /// Identifies an interned name in a schema's [`crate::intern::NameTable`].
    /// Type, attribute and generic-function names plus method labels are
    /// stored as `NameId`s in the runtime model; only the text parser and
    /// the renderers deal in strings.
    NameId,
    "n"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let t = TypeId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t, TypeId(7));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TypeId(3).to_string(), "T3");
        assert_eq!(AttrId(0).to_string(), "a0");
        assert_eq!(GfId(1).to_string(), "g1");
        assert_eq!(MethodId(9).to_string(), "m9");
        assert_eq!(VarId(2).to_string(), "v2");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(TypeId(1) < TypeId(2));
        assert!(MethodId(0) < MethodId(10));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_index_overflow_panics() {
        let _ = TypeId::from_index(usize::MAX);
    }
}
