//! A small schema definition language: parse schemas from text and print
//! them back.
//!
//! This is the adoption surface a downstream user actually wants — define
//! a hierarchy, accessors and methods in a file instead of builder calls:
//!
//! ```
//! use td_model::text::parse_schema;
//!
//! let schema = parse_schema(r#"
//!     type Person { SSN: int  date_of_birth: int }
//!     type Employee : Person { pay_rate: float }
//!
//!     accessors SSN
//!     accessors date_of_birth
//!     accessors pay_rate
//!
//!     method age(Person) -> int {
//!         return 2026 - get_date_of_birth($0);
//!     }
//! "#).unwrap();
//!
//! assert!(schema.type_id("Employee").is_ok());
//! assert_eq!(schema.gf(schema.gf_id("age").unwrap()).arity, 1);
//! ```
//!
//! [`schema_to_text`] inverts [`parse_schema`] up to structural equality
//! (hierarchy rendering, method signatures and bodies), which the tests
//! verify by round-tripping.

pub mod lexer;
pub mod parser;
pub mod printer;

pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse_schema, parse_schema_lenient};
pub(crate) use printer::method_content_text;
pub use printer::schema_to_text;

use crate::error::ModelError;
use std::fmt;

/// Errors from parsing schema text.
#[derive(Debug, Clone, PartialEq)]
pub enum TextError {
    /// Tokenization failed.
    Lex(LexError),
    /// The token stream did not match the grammar.
    Parse {
        /// Description.
        message: String,
        /// 1-based line (0 = unknown).
        line: usize,
        /// 1-based column (0 = unknown).
        col: usize,
    },
    /// A schema-construction step failed (unknown name, duplicate, …).
    Schema {
        /// The underlying schema error.
        error: ModelError,
        /// 1-based line of the declaration that triggered it.
        line: usize,
    },
}

impl TextError {
    pub(crate) fn parse(message: String, line: usize, col: usize) -> TextError {
        TextError::Parse { message, line, col }
    }

    pub(crate) fn at(error: ModelError, line: usize) -> TextError {
        TextError::Schema { error, line }
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::Lex(e) => write!(f, "lex error at {e}"),
            TextError::Parse { message, line, col } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            TextError::Schema { error, line } => {
                write!(f, "schema error at line {line}: {error}")
            }
        }
    }
}

impl std::error::Error for TextError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TextError::Schema { error, .. } => Some(error),
            _ => None,
        }
    }
}
