//! Tokenizer for the schema definition language.

use std::fmt;

/// A token with its source position (1-based line/column of its start).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`type`, `method`, …) — keywords are
    /// distinguished by the parser so identifiers may shadow nothing.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (contains a `.`).
    Float(f64),
    /// Double-quoted string literal (supports `\"` and `\\`).
    Str(String),
    /// `$<n>` — method parameter reference.
    Param(usize),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=` is not in the expression grammar, but lexed for better errors.
    BangEq,
    /// `<`
    Lt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Float(x) => write!(f, "float {x}"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::Param(i) => write!(f, "${i}"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::BangEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

/// Tokenizes `src`. Comments run from `#` or `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(LexError { message: format!($($arg)*), line, col })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let mut push = |kind: TokenKind| {
            tokens.push(Token {
                kind,
                line: tline,
                col: tcol,
            })
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                push(TokenKind::LBrace);
                i += 1;
                col += 1;
            }
            '}' => {
                push(TokenKind::RBrace);
                i += 1;
                col += 1;
            }
            '(' => {
                push(TokenKind::LParen);
                i += 1;
                col += 1;
            }
            ')' => {
                push(TokenKind::RParen);
                i += 1;
                col += 1;
            }
            ':' => {
                push(TokenKind::Colon);
                i += 1;
                col += 1;
            }
            ',' => {
                push(TokenKind::Comma);
                i += 1;
                col += 1;
            }
            ';' => {
                push(TokenKind::Semi);
                i += 1;
                col += 1;
            }
            '+' => {
                push(TokenKind::Plus);
                i += 1;
                col += 1;
            }
            '*' => {
                push(TokenKind::Star);
                i += 1;
                col += 1;
            }
            '/' => {
                push(TokenKind::Slash);
                i += 1;
                col += 1;
            }
            '<' => {
                push(TokenKind::Lt);
                i += 1;
                col += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    push(TokenKind::Arrow);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Minus);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(TokenKind::EqEq);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Assign);
                    i += 1;
                    col += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                push(TokenKind::BangEq);
                i += 2;
                col += 2;
            }
            '&' if bytes.get(i + 1) == Some(&'&') => {
                push(TokenKind::AndAnd);
                i += 2;
                col += 2;
            }
            '|' if bytes.get(i + 1) == Some(&'|') => {
                push(TokenKind::OrOr);
                i += 2;
                col += 2;
            }
            '$' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                if end == start {
                    err!("expected digits after `$`");
                }
                let text: String = bytes[start..end].iter().collect();
                let n: usize = match text.parse() {
                    Ok(n) => n,
                    Err(_) => err!("parameter index `{text}` out of range"),
                };
                push(TokenKind::Param(n));
                col += end - i;
                i = end;
            }
            '"' => {
                let mut out = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < bytes.len() {
                    match bytes[j] {
                        '"' => {
                            closed = true;
                            j += 1;
                            break;
                        }
                        '\\' => {
                            match bytes.get(j + 1) {
                                Some('"') => out.push('"'),
                                Some('\\') => out.push('\\'),
                                Some('n') => out.push('\n'),
                                _ => err!("bad escape in string literal"),
                            }
                            j += 2;
                        }
                        '\n' => err!("unterminated string literal"),
                        ch => {
                            out.push(ch);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    err!("unterminated string literal");
                }
                push(TokenKind::Str(out));
                col += j - i;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len()
                    && (bytes[end].is_ascii_digit()
                        || (bytes[end] == '.'
                            && !is_float
                            && bytes.get(end + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    if bytes[end] == '.' {
                        is_float = true;
                    }
                    end += 1;
                }
                let text: String = bytes[start..end].iter().collect();
                if is_float {
                    match text.parse::<f64>() {
                        Ok(x) => push(TokenKind::Float(x)),
                        Err(_) => err!("bad float literal `{text}`"),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(n) => push(TokenKind::Int(n)),
                        Err(_) => err!("integer literal `{text}` out of range"),
                    }
                }
                col += end - start;
                i = end;
            }
            c if c.is_alphabetic() || c == '_' || c == '^' => {
                // `^` begins surrogate-style names so round-tripping a
                // factored schema works.
                let start = i;
                let mut end = i + 1;
                while end < bytes.len()
                    && (bytes[end].is_alphanumeric()
                        || bytes[end] == '_'
                        || bytes[end] == '#'
                        || bytes[end] == '^')
                {
                    end += 1;
                }
                let text: String = bytes[start..end].iter().collect();
                push(TokenKind::Ident(text));
                col += end - start;
                i = end;
            }
            other => err!("unexpected character `{other}`"),
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("type A : B { x: int }"),
            vec![
                TokenKind::Ident("type".into()),
                TokenKind::Ident("A".into()),
                TokenKind::Colon,
                TokenKind::Ident("B".into()),
                TokenKind::LBrace,
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::Ident("int".into()),
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_literals() {
        assert_eq!(
            kinds(r#"1 + 2.5 == $0 && "hi\n" || a < b -> c"#),
            vec![
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Float(2.5),
                TokenKind::EqEq,
                TokenKind::Param(0),
                TokenKind::AndAnd,
                TokenKind::Str("hi\n".into()),
                TokenKind::OrOr,
                TokenKind::Ident("a".into()),
                TokenKind::Lt,
                TokenKind::Ident("b".into()),
                TokenKind::Arrow,
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a # comment\nb // another\nc"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn surrogate_names_lex() {
        assert_eq!(
            kinds("^Employee ^A#2 ^^T9#4"),
            vec![
                TokenKind::Ident("^Employee".into()),
                TokenKind::Ident("^A#2".into()),
                TokenKind::Ident("^^T9#4".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn errors_carry_position() {
        let e = lex("a\n  @").unwrap_err();
        assert_eq!((e.line, e.col), (2, 3));
        assert!(e.to_string().contains("unexpected character"));
        assert!(lex("\"abc").is_err());
        assert!(lex("$x").is_err());
    }

    #[test]
    fn float_vs_field_access() {
        // `1.` without digits is an int then an error char — we only treat
        // `.` as part of a float when followed by a digit.
        assert_eq!(kinds("2.75"), vec![TokenKind::Float(2.75), TokenKind::Eof]);
        assert_eq!(kinds("42"), vec![TokenKind::Int(42), TokenKind::Eof]);
    }
}
