//! Printer: renders a [`Schema`] back into the schema definition
//! language, such that `parse_schema(schema_to_text(s))` reconstructs a
//! structurally identical schema (same hierarchy rendering, same method
//! signatures, same bodies).

use crate::attrs::ValueType;
use crate::body::{Body, Expr, Literal, Stmt};
use crate::methods::{MethodKind, Specializer};
use crate::schema::Schema;
use std::fmt::Write as _;

/// Renders the whole schema as parseable text.
pub fn schema_to_text(schema: &Schema) -> String {
    let mut out = String::new();

    // Types in id order (the parser allows forward references).
    for t in schema.live_type_ids() {
        let node = schema.type_(t);
        let _ = write!(out, "type {}", schema.type_name(t));
        if let Some(src) = node.surrogate_source() {
            let _ = write!(out, " surrogate of {}", schema.type_name(src));
        }
        let supers: Vec<String> = node
            .supers()
            .iter()
            .map(|l| format!("{}({})", schema.type_name(l.target), l.prec))
            .collect();
        if !supers.is_empty() {
            let _ = write!(out, " : {}", supers.join(", "));
        }
        if node.local_attrs.is_empty() {
            let _ = writeln!(out, " {{ }}");
        } else {
            let _ = writeln!(out, " {{");
            for &a in &node.local_attrs {
                let def = schema.attr(a);
                let _ = writeln!(
                    out,
                    "    {}: {}",
                    schema.attr_name(a),
                    type_text(schema, def.ty)
                );
            }
            let _ = writeln!(out, "}}");
        }
    }
    let _ = writeln!(out);

    // Every generic function, declared explicitly so id order and
    // method-less generic functions survive the round-trip.
    for g in schema.gf_ids() {
        let gf = schema.gf(g);
        let _ = write!(out, "gf {}({})", schema.gf_name(g), gf.arity);
        if let Some(r) = gf.result {
            let _ = write!(out, " -> {}", type_text(schema, r));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);

    // Accessors and general methods in method-id order, so labels keep
    // their relative definition order per generic function.
    for m in schema.method_ids() {
        let method = schema.method(m);
        match &method.kind {
            MethodKind::Reader(attr) => {
                let at = method.specializers[0]
                    .as_type()
                    .expect("reader has object receiver");
                let _ = writeln!(
                    out,
                    "reader {} at {}",
                    schema.attr_name(*attr),
                    schema.type_name(at)
                );
            }
            MethodKind::Writer(attr) => {
                let at = method.specializers[0]
                    .as_type()
                    .expect("writer has object receiver");
                let _ = writeln!(
                    out,
                    "writer {} at {}",
                    schema.attr_name(*attr),
                    schema.type_name(at)
                );
            }
            MethodKind::General(body) => {
                let gf = schema.gf(method.gf);
                let _ = write!(out, "method ");
                let gf_name = schema.gf_name(method.gf);
                if method.label == gf.name {
                    let _ = write!(out, "{gf_name}");
                } else {
                    let _ = write!(out, "{} = {}", schema.name(method.label), gf_name);
                }
                let specs: Vec<String> = method
                    .specializers
                    .iter()
                    .map(|s| match s {
                        Specializer::Type(t) => schema.type_name(*t).to_string(),
                        Specializer::Prim(p) => p.to_string(),
                    })
                    .collect();
                let _ = write!(out, "({})", specs.join(", "));
                if let Some(r) = method.result {
                    let _ = write!(out, " -> {}", type_text(schema, r));
                }
                let _ = writeln!(out, " {{");
                print_body(schema, body, &mut out);
                let _ = writeln!(out, "}}");
            }
        }
    }
    out
}

fn type_text(schema: &Schema, ty: ValueType) -> String {
    match ty {
        ValueType::Prim(p) => p.to_string(),
        ValueType::Object(t) => schema.type_name(t).to_string(),
    }
}

/// Renders a method's defining content (kind discriminant + body text)
/// entirely through names. Used by `crate::delta` to compare methods
/// across two schemas: interned ids are schema-relative, so `Method:
/// PartialEq` is meaningless there, but this text is stable.
pub(crate) fn method_content_text(schema: &Schema, m: crate::ids::MethodId) -> String {
    match &schema.method(m).kind {
        MethodKind::Reader(attr) => format!("reader {}", schema.attr_name(*attr)),
        MethodKind::Writer(attr) => format!("writer {}", schema.attr_name(*attr)),
        MethodKind::General(body) => {
            let mut out = String::new();
            print_body(schema, body, &mut out);
            out
        }
    }
}

fn print_body(schema: &Schema, body: &Body, out: &mut String) {
    for local in &body.locals {
        let _ = writeln!(
            out,
            "    let {}: {};",
            local.name,
            type_text(schema, local.ty)
        );
    }
    print_stmts(schema, body, &body.stmts, 1, out);
}

fn print_stmts(schema: &Schema, body: &Body, stmts: &[Stmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } => {
                let _ = writeln!(
                    out,
                    "{pad}{} = {};",
                    body.locals[var.index()].name,
                    expr_text(schema, body, value)
                );
            }
            Stmt::Expr(e) => {
                let _ = writeln!(out, "{pad}{};", expr_text(schema, body, e));
            }
            Stmt::Return(e) => {
                let _ = writeln!(out, "{pad}return {};", expr_text(schema, body, e));
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let _ = writeln!(out, "{pad}if {} {{", expr_text(schema, body, cond));
                print_stmts(schema, body, then_branch, indent + 1, out);
                if else_branch.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    print_stmts(schema, body, else_branch, indent + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
        }
    }
}

fn expr_text(schema: &Schema, body: &Body, e: &Expr) -> String {
    match e {
        Expr::Param(i) => format!("${i}"),
        Expr::Var(v) => body.locals[v.index()].name.clone(),
        Expr::Lit(Literal::Int(i)) => i.to_string(),
        Expr::Lit(Literal::Float(x)) => {
            // Keep a decimal point so it re-lexes as a float.
            if x.fract() == 0.0 && x.is_finite() {
                format!("{x:.1}")
            } else {
                x.to_string()
            }
        }
        Expr::Lit(Literal::Bool(b)) => b.to_string(),
        Expr::Lit(Literal::Str(s)) => {
            format!(
                "\"{}\"",
                s.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        }
        Expr::Lit(Literal::Null) => "null".to_string(),
        Expr::Call { gf, args } => {
            let rendered: Vec<String> = args.iter().map(|a| expr_text(schema, body, a)).collect();
            format!("{}({})", schema.gf_name(*gf), rendered.join(", "))
        }
        Expr::BinOp { op, lhs, rhs } => {
            // Fully parenthesized: correctness over prettiness.
            format!(
                "({} {op} {})",
                expr_text(schema, body, lhs),
                expr_text(schema, body, rhs)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse_schema;

    fn roundtrip(src: &str) {
        let s1 = parse_schema(src).unwrap();
        let text = schema_to_text(&s1);
        let s2 = parse_schema(&text).unwrap_or_else(|e| {
            panic!("printed schema failed to re-parse: {e}\n--- printed ---\n{text}")
        });
        assert_eq!(
            s1.render_hierarchy(),
            s2.render_hierarchy(),
            "hierarchy changed across round-trip:\n{text}"
        );
        assert_eq!(
            s1.render_methods(),
            s2.render_methods(),
            "methods changed across round-trip:\n{text}"
        );
        // Bodies survive structurally.
        for m in s1.method_ids() {
            assert_eq!(
                s1.method(m).body().map(|b| b.stmts.len()),
                s2.method(m).body().map(|b| b.stmts.len())
            );
        }
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(
            r#"
            type Person { SSN: int  name: str }
            type Employee : Person { pay_rate: float }
            accessors SSN
            accessors pay_rate
            method age(Person) -> int { return 2026 - get_SSN($0); }
            "#,
        );
    }

    #[test]
    fn roundtrip_complex_bodies() {
        roundtrip(
            r#"
            type G { }
            type C : G { x: int }
            type B : C { }
            reader x at C
            writer x at B
            method u1 = u(C) { get_x($0); }
            method z1 = z(C, B) -> G {
                let g: G;
                g = $0;
                if (get_x($0) < 3) && true {
                    u($0);
                } else {
                    u($1);
                    set_x($1, (get_x($0) + 1));
                }
                return g;
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_literals() {
        roundtrip(
            r#"
            type A { s: str  f: float  b: bool }
            accessors s
            accessors f
            accessors b
            method m(A) {
                set_s($0, "he said \"hi\"\n");
                set_f($0, 2.0);
                set_f($0, 3.25);
                set_b($0, false);
                set_s($0, null);
            }
            "#,
        );
    }
}
