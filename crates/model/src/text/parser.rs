//! Recursive-descent parser for the schema definition language.
//!
//! ```text
//! type Person { SSN: int  name: str }
//! type Employee : Person { pay_rate: float }
//!
//! accessors SSN                 # reader + writer at the owner
//! reader pay_rate at Employee   # reader specialized at a given type
//!
//! method age(Person) -> int {
//!     return 2026 - get_SSN($0);
//! }
//! method v1 = v(A, C) {         # explicit label, gf `v`
//!     u($0); w($1);
//! }
//! ```
//!
//! Forward references are allowed everywhere: all types are created
//! first, then attributes and supertype edges, then accessors, then
//! method signatures (so mutually recursive bodies resolve), then bodies.

use crate::attrs::{PrimType, ValueType};
use crate::body::{BinOp, Body, Expr, Literal, LocalVar, Stmt};
use crate::ids::VarId;
use crate::methods::{MethodKind, Specializer};
use crate::schema::Schema;
use crate::text::lexer::{lex, Token, TokenKind};
use crate::text::TextError;

/// Parses a schema definition, returning a validated [`Schema`].
pub fn parse_schema(src: &str) -> Result<Schema, TextError> {
    let tokens = lex(src).map_err(TextError::Lex)?;
    let items = Parser { tokens, pos: 0 }.parse_items()?;
    build(items, true)
}

/// Parses a schema definition *without* running whole-schema validation.
///
/// Lexing, parsing and name resolution still fail as usual; what this
/// skips is the final [`Schema::validate`] pass, so ill-formed schemas
/// (inconsistent precedence diamonds, broken accessor contracts, …) load
/// successfully and can be reported on by the lint analyzer instead of
/// dying at the door. Anything derived from a lenient parse should go
/// through [`Schema::validate_diagnostics`] before real use.
pub fn parse_schema_lenient(src: &str) -> Result<Schema, TextError> {
    let tokens = lex(src).map_err(TextError::Lex)?;
    let items = Parser { tokens, pos: 0 }.parse_items()?;
    build(items, false)
}

// ---------------------------------------------------------------- AST

#[derive(Debug)]
enum Item {
    Gf {
        name: String,
        arity: usize,
        result: Option<TypeRef>,
        line: usize,
    },
    Type {
        name: String,
        surrogate_of: Option<String>,
        supers: Vec<(String, Option<i64>)>,
        attrs: Vec<(String, TypeRef)>,
        line: usize,
    },
    Accessors {
        attr: String,
        line: usize,
    },
    Reader {
        attr: String,
        at: String,
        line: usize,
    },
    Writer {
        attr: String,
        at: String,
        line: usize,
    },
    Method {
        label: String,
        gf: String,
        specs: Vec<TypeRef>,
        result: Option<TypeRef>,
        body: AstBody,
        line: usize,
    },
}

#[derive(Debug, Clone, PartialEq)]
enum TypeRef {
    Prim(PrimType),
    Named(String),
}

#[derive(Debug, Default)]
struct AstBody {
    locals: Vec<(String, TypeRef)>,
    stmts: Vec<AstStmt>,
}

#[derive(Debug)]
enum AstStmt {
    Assign(String, AstExpr, usize),
    Expr(AstExpr),
    Return(AstExpr),
    If(AstExpr, Vec<AstStmt>, Vec<AstStmt>),
}

#[derive(Debug)]
enum AstExpr {
    Param(usize),
    Name(String, usize),
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    Call(String, Vec<AstExpr>, usize),
    Bin(BinOp, Box<AstExpr>, Box<AstExpr>),
}

// ---------------------------------------------------------------- parser

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

macro_rules! perr {
    ($tok:expr, $($arg:tt)*) => {
        return Err(TextError::parse(format!($($arg)*), $tok.line, $tok.col))
    };
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> Result<Token, TextError> {
        let t = self.next();
        if &t.kind == kind {
            Ok(t)
        } else {
            perr!(t, "expected {kind}, found {}", t.kind)
        }
    }

    fn ident(&mut self) -> Result<(String, usize), TextError> {
        let t = self.next();
        match t.kind {
            TokenKind::Ident(s) => Ok((s, t.line)),
            other => perr!(t, "expected identifier, found {other}"),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn parse_items(mut self) -> Result<Vec<Item>, TextError> {
        let mut items = Vec::new();
        loop {
            let t = self.peek().clone();
            match &t.kind {
                TokenKind::Eof => return Ok(items),
                TokenKind::Ident(kw) => match kw.as_str() {
                    "type" => items.push(self.parse_type()?),
                    "accessors" => {
                        self.next();
                        let (attr, line) = self.ident()?;
                        items.push(Item::Accessors { attr, line });
                    }
                    "reader" | "writer" => {
                        let is_reader = kw == "reader";
                        self.next();
                        let (attr, line) = self.ident()?;
                        let (at_kw, _) = self.ident()?;
                        if at_kw != "at" {
                            perr!(t, "expected `at` after the attribute name");
                        }
                        let (at, _) = self.ident()?;
                        items.push(if is_reader {
                            Item::Reader { attr, at, line }
                        } else {
                            Item::Writer { attr, at, line }
                        });
                    }
                    "method" => items.push(self.parse_method()?),
                    "gf" => {
                        self.next();
                        let (name, line) = self.ident()?;
                        self.eat(&TokenKind::LParen)?;
                        let t = self.next();
                        let TokenKind::Int(arity) = t.kind else {
                            perr!(t, "expected the arity (an integer), found {}", t.kind)
                        };
                        if arity < 0 {
                            perr!(t, "arity cannot be negative");
                        }
                        self.eat(&TokenKind::RParen)?;
                        let result = if self.peek().kind == TokenKind::Arrow {
                            self.next();
                            Some(self.parse_type_ref()?)
                        } else {
                            None
                        };
                        items.push(Item::Gf {
                            name,
                            arity: arity as usize,
                            result,
                            line,
                        });
                    }
                    other => perr!(
                        t,
                        "expected `type`, `gf`, `method`, `accessors`, `reader` or `writer`, found `{other}`"
                    ),
                },
                other => perr!(t, "expected a declaration, found {other}"),
            }
        }
    }

    fn parse_type(&mut self) -> Result<Item, TextError> {
        self.next(); // `type`
        let (name, line) = self.ident()?;
        // Optional `surrogate of <source>` clause.
        let surrogate_of = if self.at_keyword("surrogate") {
            self.next();
            let (of_kw, _) = self.ident()?;
            if of_kw != "of" {
                let t = self.peek().clone();
                perr!(t, "expected `of` after `surrogate`");
            }
            Some(self.ident()?.0)
        } else {
            None
        };
        let mut supers = Vec::new();
        if self.peek().kind == TokenKind::Colon {
            self.next();
            loop {
                let (s, _) = self.ident()?;
                // Optional explicit precedence `(n)` — surrogate
                // insertion uses 0 and below, so round-tripping factored
                // schemas requires it.
                let prec = if self.peek().kind == TokenKind::LParen {
                    self.next();
                    let t = self.next();
                    let p = match t.kind {
                        TokenKind::Int(p) => p,
                        TokenKind::Minus => {
                            let t2 = self.next();
                            match t2.kind {
                                TokenKind::Int(p) => -p,
                                other => perr!(t2, "expected precedence integer, found {other}"),
                            }
                        }
                        other => perr!(t, "expected precedence integer, found {other}"),
                    };
                    self.eat(&TokenKind::RParen)?;
                    Some(p)
                } else {
                    None
                };
                supers.push((s, prec));
                if self.peek().kind == TokenKind::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.eat(&TokenKind::LBrace)?;
        let mut attrs = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let (attr_name, _) = self.ident()?;
            self.eat(&TokenKind::Colon)?;
            let ty = self.parse_type_ref()?;
            attrs.push((attr_name, ty));
        }
        self.eat(&TokenKind::RBrace)?;
        Ok(Item::Type {
            name,
            surrogate_of,
            supers,
            attrs,
            line,
        })
    }

    fn parse_type_ref(&mut self) -> Result<TypeRef, TextError> {
        let (name, _) = self.ident()?;
        Ok(match name.as_str() {
            "int" => TypeRef::Prim(PrimType::Int),
            "float" => TypeRef::Prim(PrimType::Float),
            "bool" => TypeRef::Prim(PrimType::Bool),
            "str" => TypeRef::Prim(PrimType::Str),
            _ => TypeRef::Named(name),
        })
    }

    fn parse_method(&mut self) -> Result<Item, TextError> {
        self.next(); // `method`
        let (first, line) = self.ident()?;
        let (label, gf) = if self.peek().kind == TokenKind::Assign {
            self.next();
            let (gf, _) = self.ident()?;
            (first, gf)
        } else {
            (first.clone(), first)
        };
        self.eat(&TokenKind::LParen)?;
        let mut specs = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                specs.push(self.parse_type_ref()?);
                if self.peek().kind == TokenKind::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.eat(&TokenKind::RParen)?;
        let result = if self.peek().kind == TokenKind::Arrow {
            self.next();
            Some(self.parse_type_ref()?)
        } else {
            None
        };
        let body = self.parse_block()?;
        Ok(Item::Method {
            label,
            gf,
            specs,
            result,
            body,
            line,
        })
    }

    fn parse_block(&mut self) -> Result<AstBody, TextError> {
        self.eat(&TokenKind::LBrace)?;
        let mut body = AstBody::default();
        let stmts = self.parse_stmts(&mut body)?;
        body.stmts = stmts;
        self.eat(&TokenKind::RBrace)?;
        Ok(body)
    }

    fn parse_stmts(&mut self, body: &mut AstBody) -> Result<Vec<AstStmt>, TextError> {
        let mut stmts = Vec::new();
        while self.peek().kind != TokenKind::RBrace && self.peek().kind != TokenKind::Eof {
            stmts.push(self.parse_stmt(body)?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self, body: &mut AstBody) -> Result<AstStmt, TextError> {
        let t = self.peek().clone();
        if self.at_keyword("let") {
            self.next();
            let (name, _) = self.ident()?;
            self.eat(&TokenKind::Colon)?;
            let ty = self.parse_type_ref()?;
            self.eat(&TokenKind::Semi)?;
            body.locals.push((name, ty));
            // A declaration is not itself a statement; parse the next one
            // unless the block ends here.
            if self.peek().kind == TokenKind::RBrace {
                // Empty trailing declaration: produce a no-op by returning
                // a trivially-true `if` with empty branches? Simpler:
                // represent as an empty statement via 0-branch if.
                return Ok(AstStmt::If(AstExpr::Bool(true), Vec::new(), Vec::new()));
            }
            return self.parse_stmt(body);
        }
        if self.at_keyword("return") {
            self.next();
            let e = self.parse_expr()?;
            self.eat(&TokenKind::Semi)?;
            return Ok(AstStmt::Return(e));
        }
        if self.at_keyword("if") {
            self.next();
            let cond = self.parse_expr()?;
            let mut then_body = AstBody::default();
            self.eat(&TokenKind::LBrace)?;
            let then_branch = self.parse_stmts(&mut then_body)?;
            self.eat(&TokenKind::RBrace)?;
            body.locals.extend(then_body.locals);
            let else_branch = if self.at_keyword("else") {
                self.next();
                let mut else_body = AstBody::default();
                self.eat(&TokenKind::LBrace)?;
                let stmts = self.parse_stmts(&mut else_body)?;
                self.eat(&TokenKind::RBrace)?;
                body.locals.extend(else_body.locals);
                stmts
            } else {
                Vec::new()
            };
            return Ok(AstStmt::If(cond, then_branch, else_branch));
        }
        // `name = expr;` (assignment) or `expr;`.
        if let TokenKind::Ident(name) = &t.kind {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Assign) {
                let name = name.clone();
                self.next();
                self.next();
                let e = self.parse_expr()?;
                self.eat(&TokenKind::Semi)?;
                return Ok(AstStmt::Assign(name, e, t.line));
            }
        }
        let e = self.parse_expr()?;
        self.eat(&TokenKind::Semi)?;
        Ok(AstStmt::Expr(e))
    }

    fn parse_expr(&mut self) -> Result<AstExpr, TextError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr, TextError> {
        let mut lhs = self.parse_and()?;
        while self.peek().kind == TokenKind::OrOr {
            self.next();
            let rhs = self.parse_and()?;
            lhs = AstExpr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<AstExpr, TextError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek().kind == TokenKind::AndAnd {
            self.next();
            let rhs = self.parse_cmp()?;
            lhs = AstExpr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<AstExpr, TextError> {
        let lhs = self.parse_add()?;
        let op = match self.peek().kind {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::EqEq => BinOp::Eq,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.parse_add()?;
        Ok(AstExpr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<AstExpr, TextError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.parse_mul()?;
            lhs = AstExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_mul(&mut self) -> Result<AstExpr, TextError> {
        let mut lhs = self.parse_atom()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.parse_atom()?;
            lhs = AstExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_atom(&mut self) -> Result<AstExpr, TextError> {
        let t = self.next();
        Ok(match t.kind {
            TokenKind::Int(i) => AstExpr::Int(i),
            TokenKind::Float(x) => AstExpr::Float(x),
            TokenKind::Str(s) => AstExpr::Str(s),
            TokenKind::Param(i) => AstExpr::Param(i),
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.eat(&TokenKind::RParen)?;
                e
            }
            TokenKind::Ident(name) => match name.as_str() {
                "true" => AstExpr::Bool(true),
                "false" => AstExpr::Bool(false),
                "null" => AstExpr::Null,
                _ => {
                    if self.peek().kind == TokenKind::LParen {
                        self.next();
                        let mut args = Vec::new();
                        if self.peek().kind != TokenKind::RParen {
                            loop {
                                args.push(self.parse_expr()?);
                                if self.peek().kind == TokenKind::Comma {
                                    self.next();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.eat(&TokenKind::RParen)?;
                        AstExpr::Call(name, args, t.line)
                    } else {
                        AstExpr::Name(name, t.line)
                    }
                }
            },
            other => perr!(t, "expected an expression, found {other}"),
        })
    }
}

// ---------------------------------------------------------------- build

fn build(items: Vec<Item>, validate: bool) -> Result<Schema, TextError> {
    let mut schema = Schema::new();

    // Phase 1: create all types (names only) so references may be forward.
    for item in &items {
        if let Item::Type { name, line, .. } = item {
            schema
                .add_type(name.clone(), &[])
                .map_err(|e| TextError::at(e, *line))?;
        }
    }

    // Phase 1b: surrogate origins (source types now all exist).
    for item in &items {
        if let Item::Type {
            name,
            surrogate_of: Some(source),
            line,
            ..
        } = item
        {
            let t = schema.type_id(name).map_err(|e| TextError::at(e, *line))?;
            let src_ty = schema
                .type_id(source)
                .map_err(|e| TextError::at(e, *line))?;
            schema
                .mark_surrogate(t, src_ty)
                .map_err(|e| TextError::at(e, *line))?;
        }
    }

    // Phase 2: supertype edges and attributes, in declaration order.
    for item in &items {
        if let Item::Type {
            name,
            supers,
            attrs,
            line,
            ..
        } = item
        {
            let ty = schema.type_id(name).map_err(|e| TextError::at(e, *line))?;
            for (i, (sup_name, prec)) in supers.iter().enumerate() {
                let sup = schema
                    .type_id(sup_name)
                    .map_err(|e| TextError::at(e, *line))?;
                let p = prec.map(|p| p as i32).unwrap_or(i as i32 + 1);
                schema
                    .add_super_with_prec(ty, sup, p)
                    .map_err(|e| TextError::at(e, *line))?;
            }
            for (attr_name, ty_ref) in attrs {
                let vt = resolve_type_ref(&schema, ty_ref, *line)?;
                schema
                    .add_attr(attr_name.clone(), vt, ty)
                    .map_err(|e| TextError::at(e, *line))?;
            }
        }
    }

    // Phase 2.5: explicitly declared generic functions (so generic
    // functions without methods — and accessor generic functions that must
    // keep a stable id order — round-trip).
    for item in &items {
        if let Item::Gf {
            name,
            arity,
            result,
            line,
        } = item
        {
            let result_vt = result
                .as_ref()
                .map(|r| resolve_type_ref(&schema, r, *line))
                .transpose()?;
            schema
                .add_gf(name.clone(), *arity, result_vt)
                .map_err(|e| TextError::at(e, *line))?;
        }
    }

    // Phase 3: accessors.
    for item in &items {
        match item {
            Item::Accessors { attr, line } => {
                let a = schema.attr_id(attr).map_err(|e| TextError::at(e, *line))?;
                schema
                    .add_accessors(a)
                    .map_err(|e| TextError::at(e, *line))?;
            }
            Item::Reader { attr, at, line } => {
                let a = schema.attr_id(attr).map_err(|e| TextError::at(e, *line))?;
                let t = schema.type_id(at).map_err(|e| TextError::at(e, *line))?;
                schema
                    .add_reader(a, t)
                    .map_err(|e| TextError::at(e, *line))?;
            }
            Item::Writer { attr, at, line } => {
                let a = schema.attr_id(attr).map_err(|e| TextError::at(e, *line))?;
                let t = schema.type_id(at).map_err(|e| TextError::at(e, *line))?;
                schema
                    .add_writer(a, t)
                    .map_err(|e| TextError::at(e, *line))?;
            }
            _ => {}
        }
    }

    // Phase 4: method signatures — generic functions first so bodies can
    // call forward (and mutually recursive) generic functions.
    for item in &items {
        if let Item::Method {
            gf,
            specs,
            result,
            line,
            ..
        } = item
        {
            let result_vt = result
                .as_ref()
                .map(|r| resolve_type_ref(&schema, r, *line))
                .transpose()?;
            match schema.gf_id(gf) {
                Ok(existing) => {
                    let decl = schema.gf(existing);
                    if decl.arity != specs.len() {
                        return Err(TextError::parse(
                            format!(
                                "method of `{gf}` has {} arguments but the generic function was declared with {}",
                                specs.len(),
                                decl.arity
                            ),
                            *line,
                            0,
                        ));
                    }
                }
                Err(_) => {
                    schema
                        .add_gf(gf.clone(), specs.len(), result_vt)
                        .map_err(|e| TextError::at(e, *line))?;
                }
            }
        }
    }

    // Phase 5: methods with bodies.
    for item in &items {
        if let Item::Method {
            label,
            gf,
            specs,
            result,
            body,
            line,
        } = item
        {
            let gf_id = schema.gf_id(gf).map_err(|e| TextError::at(e, *line))?;
            let specializers: Vec<Specializer> = specs
                .iter()
                .map(|s| {
                    Ok(match s {
                        TypeRef::Prim(p) => Specializer::Prim(*p),
                        TypeRef::Named(n) => Specializer::Type(
                            schema.type_id(n).map_err(|e| TextError::at(e, *line))?,
                        ),
                    })
                })
                .collect::<Result<_, TextError>>()?;
            let result_vt = result
                .as_ref()
                .map(|r| resolve_type_ref(&schema, r, *line))
                .transpose()?;
            let built = build_body(&schema, body, specs.len(), *line)?;
            schema
                .add_method(
                    gf_id,
                    label.clone(),
                    specializers,
                    MethodKind::General(built),
                    result_vt,
                )
                .map_err(|e| TextError::at(e, *line))?;
        }
    }

    if validate {
        schema.validate().map_err(|e| TextError::at(e, 0))?;
    }
    Ok(schema)
}

fn resolve_type_ref(schema: &Schema, r: &TypeRef, line: usize) -> Result<ValueType, TextError> {
    Ok(match r {
        TypeRef::Prim(p) => ValueType::Prim(*p),
        TypeRef::Named(n) => {
            ValueType::Object(schema.type_id(n).map_err(|e| TextError::at(e, line))?)
        }
    })
}

fn build_body(
    schema: &Schema,
    ast: &AstBody,
    arity: usize,
    line: usize,
) -> Result<Body, TextError> {
    let mut locals = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (name, ty) in &ast.locals {
        if names.contains(name) {
            return Err(TextError::parse(
                format!("duplicate local variable `{name}`"),
                line,
                0,
            ));
        }
        locals.push(LocalVar {
            name: name.clone(),
            ty: resolve_type_ref(schema, ty, line)?,
        });
        names.push(name.clone());
    }
    let stmts = build_stmts(schema, &ast.stmts, &names, arity)?;
    Ok(Body { locals, stmts })
}

fn build_stmts(
    schema: &Schema,
    ast: &[AstStmt],
    names: &[String],
    arity: usize,
) -> Result<Vec<Stmt>, TextError> {
    let mut out = Vec::new();
    for stmt in ast {
        match stmt {
            AstStmt::Assign(name, e, line) => {
                let idx = names.iter().position(|n| n == name).ok_or_else(|| {
                    TextError::parse(
                        format!("assignment to undeclared variable `{name}`"),
                        *line,
                        0,
                    )
                })?;
                out.push(Stmt::Assign {
                    var: VarId::from_index(idx),
                    value: build_expr(schema, e, names, arity)?,
                });
            }
            AstStmt::Expr(e) => out.push(Stmt::Expr(build_expr(schema, e, names, arity)?)),
            AstStmt::Return(e) => out.push(Stmt::Return(build_expr(schema, e, names, arity)?)),
            AstStmt::If(cond, then_branch, else_branch) => {
                // A `let`-only trailing declaration parses as an empty if;
                // drop it.
                if then_branch.is_empty() && else_branch.is_empty() {
                    if let AstExpr::Bool(true) = cond {
                        continue;
                    }
                }
                out.push(Stmt::If {
                    cond: build_expr(schema, cond, names, arity)?,
                    then_branch: build_stmts(schema, then_branch, names, arity)?,
                    else_branch: build_stmts(schema, else_branch, names, arity)?,
                });
            }
        }
    }
    Ok(out)
}

fn build_expr(
    schema: &Schema,
    ast: &AstExpr,
    names: &[String],
    arity: usize,
) -> Result<Expr, TextError> {
    Ok(match ast {
        AstExpr::Param(i) => {
            if *i >= arity {
                return Err(TextError::parse(
                    format!("parameter ${i} out of range (method has {arity} parameters)"),
                    0,
                    0,
                ));
            }
            Expr::Param(*i)
        }
        AstExpr::Int(i) => Expr::Lit(Literal::Int(*i)),
        AstExpr::Float(x) => Expr::Lit(Literal::Float(*x)),
        AstExpr::Str(s) => Expr::Lit(Literal::Str(s.clone())),
        AstExpr::Bool(b) => Expr::Lit(Literal::Bool(*b)),
        AstExpr::Null => Expr::Lit(Literal::Null),
        AstExpr::Name(name, line) => {
            let idx = names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| TextError::parse(format!("unknown variable `{name}`"), *line, 0))?;
            Expr::Var(VarId::from_index(idx))
        }
        AstExpr::Call(gf, args, line) => {
            let gf_id = schema.gf_id(gf).map_err(|e| TextError::at(e, *line))?;
            let built: Vec<Expr> = args
                .iter()
                .map(|a| build_expr(schema, a, names, arity))
                .collect::<Result<_, TextError>>()?;
            Expr::Call {
                gf: gf_id,
                args: built,
            }
        }
        AstExpr::Bin(op, l, r) => Expr::binop(
            *op,
            build_expr(schema, l, names, arity)?,
            build_expr(schema, r, names, arity)?,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1_TEXT: &str = r#"
        # The paper's Figure 1, in the schema definition language.
        type Person {
            SSN: int
            name: str
            date_of_birth: int
        }
        type Employee : Person {
            pay_rate: float
            hrs_worked: float
        }

        accessors SSN
        accessors date_of_birth
        accessors pay_rate
        accessors hrs_worked

        method age(Person) -> int {
            return 2026 - get_date_of_birth($0);
        }
        method income(Employee) -> float {
            return get_pay_rate($0) * get_hrs_worked($0);
        }
        method promote(Employee) -> bool {
            return (2026 - get_date_of_birth($0)) < get_pay_rate($0);
        }
    "#;

    #[test]
    fn parses_fig1() {
        let s = parse_schema(FIG1_TEXT).unwrap();
        let employee = s.type_id("Employee").unwrap();
        assert_eq!(s.cumulative_attrs(employee).len(), 5);
        assert_eq!(s.gf(s.gf_id("age").unwrap()).arity, 1);
        assert!(s.method_by_label("income").is_ok());
        s.validate().unwrap();
    }

    #[test]
    fn explicit_labels_and_mutual_recursion() {
        let s = parse_schema(
            r#"
            type A { a1: int }
            type B : A { }
            reader a1 at A
            method x1 = x(A, B) { y($0, $1); }
            method y1 = y(A, B) { x($0, $1); }
            "#,
        )
        .unwrap();
        assert!(s.method_by_label("x1").is_ok());
        assert!(s.method_by_label("y1").is_ok());
    }

    #[test]
    fn locals_ifs_and_object_types() {
        let s = parse_schema(
            r#"
            type G { }
            type C : G { x: int }
            reader x at C
            method z1 = z(C) -> G {
                let g: G;
                g = $0;
                if get_x($0) < 3 { u($0); } else { }
                return g;
            }
            method u1 = u(C) { get_x($0); }
            "#,
        )
        .unwrap();
        let z1 = s.method_by_label("z1").unwrap();
        let body = s.method(z1).body().unwrap();
        assert_eq!(body.locals.len(), 1);
        assert!(matches!(body.stmts[0], Stmt::Assign { .. }));
        assert!(matches!(body.stmts[1], Stmt::If { .. }));
        assert!(matches!(body.stmts[2], Stmt::Return(_)));
    }

    #[test]
    fn forward_type_references_allowed() {
        let s = parse_schema(
            r#"
            type Dept { boss: Person }
            type Person { }
            "#,
        )
        .unwrap();
        let boss = s.attr_id("boss").unwrap();
        assert_eq!(
            s.attr(boss).ty,
            ValueType::Object(s.type_id("Person").unwrap())
        );
    }

    #[test]
    fn error_messages_carry_positions() {
        let e = parse_schema("type A : Missing { }").unwrap_err();
        assert!(e.to_string().contains("Missing"), "{e}");
        let e = parse_schema("method m(A) { }").unwrap_err();
        assert!(e.to_string().contains("unknown type name"), "{e}");
        let e = parse_schema("type A { }\nmethod m(A) { $3; }").unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
        let e = parse_schema("type A { }\nmethod m(A) { zz; }").unwrap_err();
        assert!(e.to_string().contains("unknown variable"), "{e}");
        let e = parse_schema("banana").unwrap_err();
        assert!(e.to_string().contains("expected"), "{e}");
    }

    #[test]
    fn gf_arity_consistency_enforced() {
        let e = parse_schema(
            r#"
            type A { }
            method f(A) { }
            method f2 = f(A, A) { }
            "#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("arguments"), "{e}");
    }

    #[test]
    fn precedence_parses_correctly() {
        let s = parse_schema(
            r#"
            type A { x: int }
            reader x at A
            method f(A) -> int {
                return 1 + 2 * 3 - get_x($0) / 2;
            }
            "#,
        )
        .unwrap();
        let f = s.method_by_label("f").unwrap();
        // 1 + (2*3) - (get_x/2): top node is Sub(Add(1, Mul), Div).
        let body = s.method(f).body().unwrap();
        let Stmt::Return(Expr::BinOp { op, .. }) = &body.stmts[0] else {
            panic!("expected return of a binop");
        };
        assert_eq!(*op, BinOp::Sub);
    }
}
