//! # td-model — the object-oriented type-system substrate
//!
//! This crate implements the object model of §2 of Agrawal & DeMichiel,
//! *"Type Derivation Using the Projection Operation"* (Information Systems
//! 19(1), 1994): types with named attributes organized in a
//! multiple-inheritance DAG with explicit supertype precedence, and
//! behavior defined by generic functions whose multi-methods dispatch on
//! the types of **all** actual arguments.
//!
//! The projection-derivation algorithms themselves live in `td-core`; this
//! crate provides everything they operate on:
//!
//! * [`Schema`] — the single owner of types, attributes, generic functions
//!   and methods, addressed by dense ids ([`TypeId`], [`AttrId`], [`GfId`],
//!   [`MethodId`]).
//! * hierarchy queries — subtype tests, ancestor/descendant sets,
//!   cumulative state, precedence-ordered supertype links
//!   ([`hierarchy`]), CLOS-style class precedence lists ([`linearize`]).
//! * behavior — multi-method applicability and ranked dispatch
//!   ([`dispatch`]), accelerated by memoized CPLs and a generational
//!   dispatch-table cache ([`cache`]).
//! * method bodies — a small imperative IR ([`body`]) plus the data-flow
//!   analyses the paper's §4.1 and §6.3/§6.4 depend on ([`dataflow`]).
//! * deterministic rendering ([`display`]) and whole-schema validation
//!   ([`validate`]).
//!
//! ## Quick start
//!
//! ```
//! use td_model::{Schema, ValueType, CallArg};
//!
//! let mut s = Schema::new();
//! let person = s.add_type("Person", &[]).unwrap();
//! let employee = s.add_type("Employee", &[person]).unwrap();
//! let dob = s.add_attr("date_of_birth", ValueType::INT, person).unwrap();
//! s.add_accessors(dob).unwrap();
//!
//! // Employees inherit Person state and accessors.
//! assert!(s.is_subtype(employee, person));
//! assert!(s.cumulative_attrs(employee).contains(&dob));
//! let get_dob = s.gf_id("get_date_of_birth").unwrap();
//! assert!(s.most_specific(get_dob, &[CallArg::Object(employee)]).unwrap().is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod appindex;
pub mod attrs;
pub mod body;
pub mod cache;
pub mod dataflow;
pub mod delta;
pub mod diag;
pub mod dispatch;
pub mod display;
pub mod error;
pub mod hierarchy;
pub mod ids;
pub mod index;
pub mod intern;
pub mod linearize;
pub mod methods;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod text;
pub mod validate;

pub use appindex::{AnalysisPrecision, ApplicabilityIndex, AttrBitSet};
pub use attrs::{AttrDef, PrimType, ValueType};
pub use body::{BinOp, Body, BodyBuilder, Expr, Literal, LocalVar, Stmt};
pub use cache::{AnalysisKey, LintKey};
pub use dataflow::CallSite;
pub use delta::{diff_schemas, CarryReport, SchemaDelta, SchemaDiff};
pub use diag::{Diagnostic, LintCode, LintReport, Severity, Span, SpanKind};
pub use dispatch::CallArg;
pub use error::{ModelError, Result};
pub use hierarchy::{SuperLink, TypeNode, TypeOrigin};
pub use ids::{AttrId, GfId, MethodId, NameId, TypeId, VarId};
pub use index::SubtypeIndex;
pub use intern::NameTable;
pub use methods::{GenericFunction, Method, MethodKind, Specializer};
pub use schema::{Schema, SchemaSnapshot};
pub use snapshot::{
    load_snapshot, read_snapshot_file, save_snapshot, snapshot_info, write_snapshot_file,
    SnapshotError, SnapshotInfo, SNAPSHOT_VERSION,
};
pub use stats::{DispatchCacheStats, SchemaStats};
pub use text::{parse_schema, parse_schema_lenient, schema_to_text, TextError};
