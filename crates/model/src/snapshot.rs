//! The versioned binary snapshot format: `Schema` + warm caches on disk.
//!
//! A server restart (or a fleet of batch workers) used to cold-start by
//! re-parsing schema text and re-deriving every cache. A snapshot instead
//! persists the whole runtime state — the interned name arena, every
//! entity arena, and the warm dispatch-acceleration maps (CPL memo, rank
//! tables, per-call dispatch tables and applicability condensation
//! indexes) — so loading is O(file): decode, rebuild the `NameId`-keyed
//! lookup maps, install the caches at the current generation. No text
//! parse, no derivation.
//!
//! ## Wire layout
//!
//! ```text
//! magic    [u8; 8]      = b"TDSNAP1\n"
//! version  u32 LE       = SNAPSHOT_VERSION
//! n_sects  u32 LE
//! section table, n_sects × { tag u32, offset u64, len u64, checksum u64 }
//! section payloads (contiguous, in table order)
//! trailer  u64 LE       = FNV-1a over every preceding byte
//! ```
//!
//! All integers are little-endian. Checksums (per-section and trailer)
//! are 64-bit FNV-1a — dependency-free and fast enough to be invisible
//! next to I/O. Every multi-byte read is bounds-checked, so a truncated,
//! bit-flipped or hostile file produces a structured [`SnapshotError`],
//! never a panic. Unknown section tags are skipped (a newer writer may
//! append sections without breaking this reader), but an unknown *format
//! version* is rejected outright.
//!
//! Maps are serialized in sorted key order, so saving the same schema
//! twice yields byte-identical files — CI compares snapshot artifacts.
//!
//! Deliberately **not** persisted: cached lint reports (presentation-layer
//! results that re-derive quickly and would drag diagnostic strings into
//! the wire format) and cache hit/miss counters (telemetry, not state).

use crate::appindex::{ApplicabilityIndex, AttrBitSet};
use crate::attrs::{AttrDef, PrimType, ValueType};
use crate::body::{BinOp, Body, Expr, Literal, LocalVar, Stmt};
use crate::cache::WarmCaches;
use crate::hierarchy::{SuperLink, TypeNode, TypeOrigin};
use crate::ids::{AttrId, GfId, MethodId, NameId, TypeId, VarId};
use crate::intern::{fnv1a, NameTable};
use crate::methods::{GenericFunction, Method, MethodKind, Specializer};
use crate::schema::Schema;
use crate::CallArg;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// The format version this build writes and the newest it can read.
pub const SNAPSHOT_VERSION: u32 = 1;

const MAGIC: [u8; 8] = *b"TDSNAP1\n";

// Section tags. New sections get new tags; readers skip unknown ones.
const SECT_META: u32 = 1;
const SECT_NAMES: u32 = 2;
const SECT_TYPES: u32 = 3;
const SECT_ATTRS: u32 = 4;
const SECT_GFS: u32 = 5;
const SECT_METHODS: u32 = 6;
const SECT_CPL: u32 = 7;
const SECT_RANKS: u32 = 8;
const SECT_DISPATCH: u32 = 9;
const SECT_APPINDEX: u32 = 10;

/// Structured failure modes of snapshot I/O. Corruption never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem-level failure (open, read, write).
    Io(String),
    /// The file does not start with the snapshot magic bytes.
    BadMagic,
    /// The file declares a format version newer than this build reads.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The file ends before a declared structure does.
    Truncated {
        /// Byte offset at which the read ran out of data.
        offset: usize,
    },
    /// A section (or the whole-file trailer) failed its checksum.
    ChecksumMismatch {
        /// Which checksum failed, e.g. `"trailer"` or `"types"`.
        section: String,
    },
    /// Structurally invalid content behind a valid checksum (bad tag,
    /// out-of-range id, missing section).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a tdv snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot checksum mismatch in {section}")
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Summary of a snapshot file, as printed by `tdv snapshot inspect`.
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// Format version declared in the header.
    pub version: u32,
    /// Total file size in bytes.
    pub file_bytes: usize,
    /// `(section name, payload bytes, checksum)` per section, file order.
    pub sections: Vec<(String, usize, u64)>,
    /// Embedded metadata pairs.
    pub meta: Vec<(String, String)>,
    /// Distinct interned names.
    pub n_names: usize,
    /// Type slots (live + retired).
    pub n_types: usize,
    /// Attributes.
    pub n_attrs: usize,
    /// Generic functions.
    pub n_gfs: usize,
    /// Methods.
    pub n_methods: usize,
    /// Persisted CPL + rank table entries.
    pub cpl_entries: usize,
    /// Persisted dispatch-table entries (applicable + ranked).
    pub dispatch_entries: usize,
    /// Persisted applicability condensation indexes.
    pub index_entries: usize,
}

// ---------------------------------------------------------------- writing

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize32(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("snapshot count overflows u32"));
    }

    fn str(&mut self, s: &str) {
        self.usize32(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn value_type(&mut self, vt: ValueType) {
        match vt {
            ValueType::Prim(p) => self.u8(prim_tag(p)),
            ValueType::Object(t) => {
                self.u8(4);
                self.u32(t.0);
            }
        }
    }

    fn opt_value_type(&mut self, vt: Option<ValueType>) {
        match vt {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.value_type(v);
            }
        }
    }

    fn call_arg(&mut self, a: CallArg) {
        match a {
            CallArg::Object(t) => {
                self.u8(0);
                self.u32(t.0);
            }
            CallArg::Prim(p) => {
                self.u8(1);
                self.u8(prim_tag(p));
            }
            CallArg::Null => self.u8(2),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Param(i) => {
                self.u8(0);
                self.usize32(*i);
            }
            Expr::Var(v) => {
                self.u8(1);
                self.u32(v.0);
            }
            Expr::Lit(l) => {
                self.u8(2);
                match l {
                    Literal::Int(v) => {
                        self.u8(0);
                        self.i64(*v);
                    }
                    Literal::Float(v) => {
                        self.u8(1);
                        self.u64(v.to_bits());
                    }
                    Literal::Bool(v) => {
                        self.u8(2);
                        self.u8(*v as u8);
                    }
                    Literal::Str(s) => {
                        self.u8(3);
                        self.str(s);
                    }
                    Literal::Null => self.u8(4),
                }
            }
            Expr::Call { gf, args } => {
                self.u8(3);
                self.u32(gf.0);
                self.usize32(args.len());
                for a in args {
                    self.expr(a);
                }
            }
            Expr::BinOp { op, lhs, rhs } => {
                self.u8(4);
                self.u8(binop_tag(*op));
                self.expr(lhs);
                self.expr(rhs);
            }
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        self.usize32(stmts.len());
        for s in stmts {
            match s {
                Stmt::Assign { var, value } => {
                    self.u8(0);
                    self.u32(var.0);
                    self.expr(value);
                }
                Stmt::Expr(e) => {
                    self.u8(1);
                    self.expr(e);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.u8(2);
                    self.expr(cond);
                    self.stmts(then_branch);
                    self.stmts(else_branch);
                }
                Stmt::Return(e) => {
                    self.u8(3);
                    self.expr(e);
                }
            }
        }
    }

    fn body(&mut self, b: &Body) {
        self.usize32(b.locals.len());
        for l in &b.locals {
            self.str(&l.name);
            self.value_type(l.ty);
        }
        self.stmts(&b.stmts);
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

fn prim_tag(p: PrimType) -> u8 {
    match p {
        PrimType::Int => 0,
        PrimType::Float => 1,
        PrimType::Bool => 2,
        PrimType::Str => 3,
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Lt => 4,
        BinOp::Eq => 5,
        BinOp::And => 6,
        BinOp::Or => 7,
    }
}

fn encode_meta(meta: &[(String, String)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize32(meta.len());
    for (k, v) in meta {
        w.str(k);
        w.str(v);
    }
    w.finish()
}

fn encode_names(names: &NameTable) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(names.buf().len() as u64);
    w.buf.extend_from_slice(names.buf().as_bytes());
    w.usize32(names.spans().len());
    for &(off, len) in names.spans() {
        w.u32(off);
        w.u32(len);
    }
    w.finish()
}

fn encode_types(types: &[TypeNode]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize32(types.len());
    for node in types {
        w.u32(node.name.0);
        match node.origin {
            TypeOrigin::Original => w.u8(0),
            TypeOrigin::Surrogate { source } => {
                w.u8(1);
                w.u32(source.0);
            }
        }
        w.u8(node.dead as u8);
        w.usize32(node.local_attrs.len());
        for a in &node.local_attrs {
            w.u32(a.0);
        }
        w.usize32(node.supers.len());
        for link in &node.supers {
            w.u32(link.target.0);
            w.i32(link.prec);
        }
    }
    w.finish()
}

fn encode_attrs(attrs: &[AttrDef]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize32(attrs.len());
    for a in attrs {
        w.u32(a.name.0);
        w.value_type(a.ty);
        w.u32(a.owner.0);
    }
    w.finish()
}

fn encode_gfs(gfs: &[GenericFunction]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize32(gfs.len());
    for g in gfs {
        w.u32(g.name.0);
        w.usize32(g.arity);
        w.opt_value_type(g.result);
        w.usize32(g.methods.len());
        for m in &g.methods {
            w.u32(m.0);
        }
    }
    w.finish()
}

fn encode_methods(methods: &[Method]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize32(methods.len());
    for m in methods {
        w.u32(m.gf.0);
        w.u32(m.label.0);
        w.usize32(m.specializers.len());
        for s in &m.specializers {
            match s {
                Specializer::Type(t) => {
                    w.u8(0);
                    w.u32(t.0);
                }
                Specializer::Prim(p) => {
                    w.u8(1);
                    w.u8(prim_tag(*p));
                }
            }
        }
        match &m.kind {
            MethodKind::Reader(a) => {
                w.u8(0);
                w.u32(a.0);
            }
            MethodKind::Writer(a) => {
                w.u8(1);
                w.u32(a.0);
            }
            MethodKind::General(b) => {
                w.u8(2);
                w.body(b);
            }
        }
        w.opt_value_type(m.result);
    }
    w.finish()
}

fn encode_cpl(cpl: &HashMap<TypeId, Arc<Vec<TypeId>>>) -> Vec<u8> {
    let mut entries: Vec<_> = cpl.iter().collect();
    entries.sort_by_key(|(t, _)| **t);
    let mut w = Writer::new();
    w.usize32(entries.len());
    for (t, list) in entries {
        w.u32(t.0);
        w.usize32(list.len());
        for x in list.iter() {
            w.u32(x.0);
        }
    }
    w.finish()
}

fn encode_ranks(ranks: &HashMap<TypeId, Arc<Vec<(TypeId, usize)>>>) -> Vec<u8> {
    let mut entries: Vec<_> = ranks.iter().collect();
    entries.sort_by_key(|(t, _)| **t);
    let mut w = Writer::new();
    w.usize32(entries.len());
    for (t, list) in entries {
        w.u32(t.0);
        w.usize32(list.len());
        for &(ty, rank) in list.iter() {
            w.u32(ty.0);
            w.usize32(rank);
        }
    }
    w.finish()
}

fn encode_dispatch_map(w: &mut Writer, map: &HashMap<(GfId, Vec<CallArg>), Arc<Vec<MethodId>>>) {
    // Sort by the encoded key bytes: deterministic without an Ord on CallArg.
    let mut entries: Vec<(Vec<u8>, &Arc<Vec<MethodId>>)> = map
        .iter()
        .map(|((gf, args), methods)| {
            let mut kw = Writer::new();
            kw.u32(gf.0);
            kw.usize32(args.len());
            for &a in args {
                kw.call_arg(a);
            }
            (kw.finish(), methods)
        })
        .collect();
    entries.sort();
    w.usize32(entries.len());
    for (key, methods) in entries {
        w.buf.extend_from_slice(&key);
        w.usize32(methods.len());
        for m in methods.iter() {
            w.u32(m.0);
        }
    }
}

fn encode_dispatch(
    applicable: &HashMap<(GfId, Vec<CallArg>), Arc<Vec<MethodId>>>,
    ranked: &HashMap<(GfId, Vec<CallArg>), Arc<Vec<MethodId>>>,
) -> Vec<u8> {
    let mut w = Writer::new();
    encode_dispatch_map(&mut w, applicable);
    encode_dispatch_map(&mut w, ranked);
    w.finish()
}

fn encode_appindex(indexes: &HashMap<TypeId, Arc<ApplicabilityIndex>>) -> Vec<u8> {
    let mut entries: Vec<_> = indexes.iter().collect();
    entries.sort_by_key(|(t, _)| **t);
    let mut w = Writer::new();
    w.usize32(entries.len());
    for (_, idx) in entries {
        w.u32(idx.source.0);
        w.usize32(idx.n_attrs);
        w.usize32(idx.methods.len());
        for m in &idx.methods {
            w.u32(m.0);
        }
        for &s in &idx.scc_of {
            w.usize32(s);
        }
        w.usize32(idx.scc_footprint.len());
        for sid in 0..idx.scc_footprint.len() {
            // Footprints are sparse (an SCC touches a handful of attrs
            // out of the whole schema), so store set-bit positions, not
            // the dense word array — on a 10k-type schema this is the
            // difference between a ~2MB and a ~200MB snapshot.
            let footprint = &idx.scc_footprint[sid];
            w.usize32(footprint.len());
            for a in footprint.iter() {
                w.u32(a.index() as u32);
            }
            w.u8(idx.scc_dead[sid] as u8);
            w.u8(idx.scc_fallback[sid] as u8);
            w.u8(idx.scc_cyclic[sid] as u8);
            w.usize32(idx.scc_members[sid].len());
            for &v in &idx.scc_members[sid] {
                w.usize32(v);
            }
        }
        w.usize32(idx.fallback_methods);
    }
    w.finish()
}

/// Serializes a schema (with its warm caches) and optional metadata pairs
/// into the versioned snapshot byte format. Deterministic: the same
/// schema state yields the same bytes.
pub fn save_snapshot(schema: &Schema, meta: &[(String, String)]) -> Vec<u8> {
    let warm = schema.cache.export_warm(schema);
    let sections: Vec<(u32, Vec<u8>)> = vec![
        (SECT_META, encode_meta(meta)),
        (SECT_NAMES, encode_names(&schema.names)),
        (SECT_TYPES, encode_types(&schema.types)),
        (SECT_ATTRS, encode_attrs(&schema.attrs)),
        (SECT_GFS, encode_gfs(&schema.gfs)),
        (SECT_METHODS, encode_methods(&schema.methods)),
        (SECT_CPL, encode_cpl(&warm.cpl)),
        (SECT_RANKS, encode_ranks(&warm.ranks)),
        (
            SECT_DISPATCH,
            encode_dispatch(&warm.applicable, &warm.ranked),
        ),
        (SECT_APPINDEX, encode_appindex(&warm.app_index)),
    ];

    let table_len = sections.len() * (4 + 8 + 8 + 8);
    let mut offset = (MAGIC.len() + 4 + 4 + table_len) as u64;
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in &sections {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    let trailer = fnv1a(&out);
    out.extend_from_slice(&trailer.to_le_bytes());
    out
}

// ---------------------------------------------------------------- reading

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type Sres<T> = std::result::Result<T, SnapshotError>;

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Sres<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated { offset: self.pos })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Sres<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Sres<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Sres<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i32(&mut self) -> Sres<i32> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn i64(&mut self) -> Sres<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A u32 count, sanity-bounded so a corrupt length cannot trigger a
    /// huge allocation: each counted item occupies at least one byte.
    fn count(&mut self) -> Sres<usize> {
        let n = self.u32()? as usize;
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err(SnapshotError::Corrupt(format!(
                "count {n} exceeds remaining payload at byte {}",
                self.pos
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Sres<String> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    fn value_type(&mut self) -> Sres<ValueType> {
        match self.u8()? {
            t @ 0..=3 => Ok(ValueType::Prim(prim_from_tag(t)?)),
            4 => Ok(ValueType::Object(TypeId(self.u32()?))),
            t => Err(SnapshotError::Corrupt(format!("bad value-type tag {t}"))),
        }
    }

    fn opt_value_type(&mut self) -> Sres<Option<ValueType>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.value_type()?)),
            t => Err(SnapshotError::Corrupt(format!("bad option tag {t}"))),
        }
    }

    fn call_arg(&mut self) -> Sres<CallArg> {
        match self.u8()? {
            0 => Ok(CallArg::Object(TypeId(self.u32()?))),
            1 => Ok(CallArg::Prim(prim_from_tag(self.u8()?)?)),
            2 => Ok(CallArg::Null),
            t => Err(SnapshotError::Corrupt(format!("bad call-arg tag {t}"))),
        }
    }

    fn expr(&mut self, depth: usize) -> Sres<Expr> {
        if depth > 512 {
            return Err(SnapshotError::Corrupt("expression nests too deep".into()));
        }
        match self.u8()? {
            0 => Ok(Expr::Param(self.u32()? as usize)),
            1 => Ok(Expr::Var(VarId(self.u32()?))),
            2 => {
                let lit = match self.u8()? {
                    0 => Literal::Int(self.i64()?),
                    1 => Literal::Float(f64::from_bits(self.u64()?)),
                    2 => Literal::Bool(self.u8()? != 0),
                    3 => Literal::Str(self.str()?),
                    4 => Literal::Null,
                    t => {
                        return Err(SnapshotError::Corrupt(format!("bad literal tag {t}")));
                    }
                };
                Ok(Expr::Lit(lit))
            }
            3 => {
                let gf = GfId(self.u32()?);
                let n = self.count()?;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.expr(depth + 1)?);
                }
                Ok(Expr::Call { gf, args })
            }
            4 => {
                let op = binop_from_tag(self.u8()?)?;
                let lhs = Box::new(self.expr(depth + 1)?);
                let rhs = Box::new(self.expr(depth + 1)?);
                Ok(Expr::BinOp { op, lhs, rhs })
            }
            t => Err(SnapshotError::Corrupt(format!("bad expression tag {t}"))),
        }
    }

    fn stmts(&mut self, depth: usize) -> Sres<Vec<Stmt>> {
        if depth > 512 {
            return Err(SnapshotError::Corrupt("statements nest too deep".into()));
        }
        let n = self.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match self.u8()? {
                0 => Stmt::Assign {
                    var: VarId(self.u32()?),
                    value: self.expr(0)?,
                },
                1 => Stmt::Expr(self.expr(0)?),
                2 => Stmt::If {
                    cond: self.expr(0)?,
                    then_branch: self.stmts(depth + 1)?,
                    else_branch: self.stmts(depth + 1)?,
                },
                3 => Stmt::Return(self.expr(0)?),
                t => {
                    return Err(SnapshotError::Corrupt(format!("bad statement tag {t}")));
                }
            });
        }
        Ok(out)
    }

    fn body(&mut self) -> Sres<Body> {
        let n_locals = self.count()?;
        let mut locals = Vec::with_capacity(n_locals);
        for _ in 0..n_locals {
            locals.push(LocalVar {
                name: self.str()?,
                ty: self.value_type()?,
            });
        }
        let stmts = self.stmts(0)?;
        Ok(Body { locals, stmts })
    }
}

fn prim_from_tag(t: u8) -> Sres<PrimType> {
    Ok(match t {
        0 => PrimType::Int,
        1 => PrimType::Float,
        2 => PrimType::Bool,
        3 => PrimType::Str,
        _ => return Err(SnapshotError::Corrupt(format!("bad prim tag {t}"))),
    })
}

fn binop_from_tag(t: u8) -> Sres<BinOp> {
    Ok(match t {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Lt,
        5 => BinOp::Eq,
        6 => BinOp::And,
        7 => BinOp::Or,
        _ => return Err(SnapshotError::Corrupt(format!("bad binop tag {t}"))),
    })
}

struct Sections<'a> {
    by_tag: HashMap<u32, &'a [u8]>,
    table: Vec<(u32, usize, u64)>,
    version: u32,
}

fn section_name(tag: u32) -> String {
    match tag {
        SECT_META => "meta".into(),
        SECT_NAMES => "names".into(),
        SECT_TYPES => "types".into(),
        SECT_ATTRS => "attrs".into(),
        SECT_GFS => "gfs".into(),
        SECT_METHODS => "methods".into(),
        SECT_CPL => "cpl".into(),
        SECT_RANKS => "ranks".into(),
        SECT_DISPATCH => "dispatch".into(),
        SECT_APPINDEX => "appindex".into(),
        other => format!("unknown({other})"),
    }
}

/// Parses and verifies the envelope: magic, version, trailer checksum,
/// section table and per-section checksums.
fn parse_envelope(bytes: &[u8]) -> Sres<Sections<'_>> {
    if bytes.len() < MAGIC.len() {
        return Err(SnapshotError::Truncated {
            offset: bytes.len(),
        });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = Reader::new(bytes);
    r.pos = MAGIC.len();
    let version = r.u32()?;
    if version > SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    // Whole-file integrity first: the last 8 bytes checksum everything
    // before them, so any flipped bit anywhere is caught here.
    if bytes.len() < MAGIC.len() + 4 + 4 + 8 {
        return Err(SnapshotError::Truncated {
            offset: bytes.len(),
        });
    }
    let body_end = bytes.len() - 8;
    let declared = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a(&bytes[..body_end]) != declared {
        return Err(SnapshotError::ChecksumMismatch {
            section: "trailer".into(),
        });
    }
    let n_sections = r.u32()? as usize;
    if n_sections > 1024 {
        return Err(SnapshotError::Corrupt(format!(
            "implausible section count {n_sections}"
        )));
    }
    let mut by_tag = HashMap::new();
    let mut table = Vec::with_capacity(n_sections);
    let mut entries = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let tag = r.u32()?;
        let offset = r.u64()? as usize;
        let len = r.u64()? as usize;
        let checksum = r.u64()?;
        entries.push((tag, offset, len, checksum));
    }
    for (tag, offset, len, checksum) in entries {
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= body_end)
            .ok_or(SnapshotError::Truncated { offset })?;
        let payload = &bytes[offset..end];
        if fnv1a(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch {
                section: section_name(tag),
            });
        }
        by_tag.insert(tag, payload);
        table.push((tag, len, checksum));
    }
    Ok(Sections {
        by_tag,
        table,
        version,
    })
}

fn section<'a>(s: &Sections<'a>, tag: u32) -> Sres<Reader<'a>> {
    s.by_tag
        .get(&tag)
        .map(|p| Reader::new(p))
        .ok_or_else(|| SnapshotError::Corrupt(format!("missing section {}", section_name(tag))))
}

fn decode_meta(s: &Sections<'_>) -> Sres<Vec<(String, String)>> {
    let mut r = section(s, SECT_META)?;
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.str()?;
        let v = r.str()?;
        out.push((k, v));
    }
    Ok(out)
}

fn decode_names(s: &Sections<'_>) -> Sres<NameTable> {
    let mut r = section(s, SECT_NAMES)?;
    let buf_len = r.u64()? as usize;
    let buf = String::from_utf8(r.take(buf_len)?.to_vec())
        .map_err(|_| SnapshotError::Corrupt("name arena is not UTF-8".into()))?;
    let n = r.count()?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        let off = r.u32()?;
        let len = r.u32()?;
        spans.push((off, len));
    }
    NameTable::from_parts(buf, spans)
        .ok_or_else(|| SnapshotError::Corrupt("name arena spans out of bounds".into()))
}

fn decode_types(s: &Sections<'_>, n_names: usize) -> Sres<Vec<TypeNode>> {
    let mut r = section(s, SECT_TYPES)?;
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = NameId(r.u32()?);
        if name.index() >= n_names {
            return Err(SnapshotError::Corrupt(format!(
                "type name id {name} outside arena"
            )));
        }
        let origin = match r.u8()? {
            0 => TypeOrigin::Original,
            1 => TypeOrigin::Surrogate {
                source: TypeId(r.u32()?),
            },
            t => return Err(SnapshotError::Corrupt(format!("bad origin tag {t}"))),
        };
        let dead = r.u8()? != 0;
        let n_attrs = r.count()?;
        let mut local_attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            local_attrs.push(AttrId(r.u32()?));
        }
        let n_supers = r.count()?;
        let mut supers = Vec::with_capacity(n_supers);
        for _ in 0..n_supers {
            supers.push(SuperLink {
                target: TypeId(r.u32()?),
                prec: r.i32()?,
            });
        }
        out.push(TypeNode {
            name,
            local_attrs,
            supers,
            origin,
            dead,
        });
    }
    Ok(out)
}

fn decode_attrs(s: &Sections<'_>, n_names: usize, n_types: usize) -> Sres<Vec<AttrDef>> {
    let mut r = section(s, SECT_ATTRS)?;
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = NameId(r.u32()?);
        let ty = r.value_type()?;
        let owner = TypeId(r.u32()?);
        if name.index() >= n_names || owner.index() >= n_types {
            return Err(SnapshotError::Corrupt("attribute id out of range".into()));
        }
        out.push(AttrDef { name, ty, owner });
    }
    Ok(out)
}

fn decode_gfs(s: &Sections<'_>, n_names: usize) -> Sres<Vec<GenericFunction>> {
    let mut r = section(s, SECT_GFS)?;
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = NameId(r.u32()?);
        if name.index() >= n_names {
            return Err(SnapshotError::Corrupt("gf name id outside arena".into()));
        }
        let arity = r.u32()? as usize;
        let result = r.opt_value_type()?;
        let n_methods = r.count()?;
        let mut methods = Vec::with_capacity(n_methods);
        for _ in 0..n_methods {
            methods.push(MethodId(r.u32()?));
        }
        out.push(GenericFunction {
            name,
            arity,
            result,
            methods,
        });
    }
    Ok(out)
}

fn decode_methods(s: &Sections<'_>, n_names: usize, n_gfs: usize) -> Sres<Vec<Method>> {
    let mut r = section(s, SECT_METHODS)?;
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let gf = GfId(r.u32()?);
        let label = NameId(r.u32()?);
        if label.index() >= n_names || gf.index() >= n_gfs {
            return Err(SnapshotError::Corrupt("method id out of range".into()));
        }
        let n_specs = r.count()?;
        let mut specializers = Vec::with_capacity(n_specs);
        for _ in 0..n_specs {
            specializers.push(match r.u8()? {
                0 => Specializer::Type(TypeId(r.u32()?)),
                1 => Specializer::Prim(prim_from_tag(r.u8()?)?),
                t => {
                    return Err(SnapshotError::Corrupt(format!("bad specializer tag {t}")));
                }
            });
        }
        let kind = match r.u8()? {
            0 => MethodKind::Reader(AttrId(r.u32()?)),
            1 => MethodKind::Writer(AttrId(r.u32()?)),
            2 => MethodKind::General(r.body()?),
            t => return Err(SnapshotError::Corrupt(format!("bad method-kind tag {t}"))),
        };
        let result = r.opt_value_type()?;
        out.push(Method {
            gf,
            label,
            specializers,
            kind,
            result,
        });
    }
    Ok(out)
}

fn decode_cpl(s: &Sections<'_>) -> Sres<HashMap<TypeId, Arc<Vec<TypeId>>>> {
    let mut r = section(s, SECT_CPL)?;
    let n = r.count()?;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let t = TypeId(r.u32()?);
        let len = r.count()?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            list.push(TypeId(r.u32()?));
        }
        out.insert(t, Arc::new(list));
    }
    Ok(out)
}

/// Decoded rank tables, keyed like `WarmCaches::ranks`.
type RankTables = HashMap<TypeId, Arc<Vec<(TypeId, usize)>>>;

fn decode_ranks(s: &Sections<'_>) -> Sres<RankTables> {
    let mut r = section(s, SECT_RANKS)?;
    let n = r.count()?;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let t = TypeId(r.u32()?);
        let len = r.count()?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let ty = TypeId(r.u32()?);
            let rank = r.u32()? as usize;
            list.push((ty, rank));
        }
        out.insert(t, Arc::new(list));
    }
    Ok(out)
}

/// Decoded dispatch tables, keyed like `WarmCaches::dispatch`.
type DispatchTables = HashMap<(GfId, Vec<CallArg>), Arc<Vec<MethodId>>>;

fn decode_dispatch_map(r: &mut Reader<'_>) -> Sres<DispatchTables> {
    let n = r.count()?;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let gf = GfId(r.u32()?);
        let n_args = r.count()?;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            args.push(r.call_arg()?);
        }
        let n_methods = r.count()?;
        let mut methods = Vec::with_capacity(n_methods);
        for _ in 0..n_methods {
            methods.push(MethodId(r.u32()?));
        }
        out.insert((gf, args), Arc::new(methods));
    }
    Ok(out)
}

type DispatchMaps = (
    HashMap<(GfId, Vec<CallArg>), Arc<Vec<MethodId>>>,
    HashMap<(GfId, Vec<CallArg>), Arc<Vec<MethodId>>>,
);

fn decode_dispatch(s: &Sections<'_>) -> Sres<DispatchMaps> {
    let mut r = section(s, SECT_DISPATCH)?;
    let applicable = decode_dispatch_map(&mut r)?;
    let ranked = decode_dispatch_map(&mut r)?;
    Ok((applicable, ranked))
}

fn decode_appindex(s: &Sections<'_>) -> Sres<HashMap<TypeId, Arc<ApplicabilityIndex>>> {
    let mut r = section(s, SECT_APPINDEX)?;
    let n = r.count()?;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let source = TypeId(r.u32()?);
        let n_attrs = r.u32()? as usize;
        let n_methods = r.count()?;
        let mut methods = Vec::with_capacity(n_methods);
        for _ in 0..n_methods {
            methods.push(MethodId(r.u32()?));
        }
        let node_of: HashMap<MethodId, usize> =
            methods.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        let mut scc_of = Vec::with_capacity(n_methods);
        for _ in 0..n_methods {
            scc_of.push(r.u32()? as usize);
        }
        let n_sccs = r.count()?;
        let mut scc_footprint = Vec::with_capacity(n_sccs);
        let mut scc_dead = Vec::with_capacity(n_sccs);
        let mut scc_fallback = Vec::with_capacity(n_sccs);
        let mut scc_cyclic = Vec::with_capacity(n_sccs);
        let mut scc_members = Vec::with_capacity(n_sccs);
        for _ in 0..n_sccs {
            let n_bits = r.count()?;
            let mut footprint = AttrBitSet::new(n_attrs);
            for _ in 0..n_bits {
                let a = r.u32()? as usize;
                if a >= n_attrs {
                    return Err(SnapshotError::Corrupt("footprint attr out of range".into()));
                }
                footprint.insert(AttrId::from_index(a));
            }
            scc_footprint.push(footprint);
            scc_dead.push(r.u8()? != 0);
            scc_fallback.push(r.u8()? != 0);
            scc_cyclic.push(r.u8()? != 0);
            let n_members = r.count()?;
            let mut members = Vec::with_capacity(n_members);
            for _ in 0..n_members {
                let v = r.u32()? as usize;
                if v >= n_methods {
                    return Err(SnapshotError::Corrupt("SCC member out of range".into()));
                }
                members.push(v);
            }
            scc_members.push(members);
        }
        if scc_of.iter().any(|&sid| sid >= n_sccs) {
            return Err(SnapshotError::Corrupt("SCC id out of range".into()));
        }
        let fallback_methods = r.u32()? as usize;
        // Call edges are not serialized (the snapshot format predates
        // them); a loaded index is always syntactic and edge-free, which
        // only disables the semantic-refinement fast path, not verdicts.
        let edges = vec![Vec::new(); n_methods];
        out.insert(
            source,
            Arc::new(ApplicabilityIndex {
                source,
                n_attrs,
                methods,
                node_of,
                scc_of,
                scc_footprint,
                scc_dead,
                scc_fallback,
                scc_members,
                scc_cyclic,
                fallback_methods,
                precision: crate::appindex::AnalysisPrecision::Syntactic,
                edges,
                cycle_rings: std::sync::OnceLock::new(),
            }),
        );
    }
    Ok(out)
}

/// Reconstructs a schema (with warm caches installed) from snapshot
/// bytes. Returns the schema plus the embedded metadata pairs.
///
/// O(file): no text parsing and no derivation — lookup maps are rebuilt
/// directly from the arenas and cache entries are installed as current
/// for the fresh schema's generation.
pub fn load_snapshot(bytes: &[u8]) -> Sres<(Schema, Vec<(String, String)>)> {
    let sections = parse_envelope(bytes)?;
    let meta = decode_meta(&sections)?;
    let names = decode_names(&sections)?;
    let types = decode_types(&sections, names.len())?;
    let attrs = decode_attrs(&sections, names.len(), types.len())?;
    let gfs = decode_gfs(&sections, names.len())?;
    let methods = decode_methods(&sections, names.len(), gfs.len())?;

    let type_names = types
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.dead)
        .map(|(i, n)| (n.name, TypeId::from_index(i)))
        .collect();
    let attr_names = attrs
        .iter()
        .enumerate()
        .map(|(i, a)| (a.name, AttrId::from_index(i)))
        .collect();
    let gf_names = gfs
        .iter()
        .enumerate()
        .map(|(i, g)| (g.name, GfId::from_index(i)))
        .collect();

    let mut schema = Schema {
        names,
        types,
        type_names,
        attrs,
        attr_names,
        gfs,
        gf_names,
        methods,
        cache: Default::default(),
    };

    let cpl = decode_cpl(&sections)?;
    let ranks = decode_ranks(&sections)?;
    let (applicable, ranked) = decode_dispatch(&sections)?;
    let app_index = decode_appindex(&sections)?;
    schema.cache.import_warm(WarmCaches {
        cpl,
        ranks,
        applicable,
        ranked,
        app_index,
    });
    Ok((schema, meta))
}

/// Parses a snapshot and reports its layout and content counts without
/// keeping the schema (the `tdv snapshot inspect` backend).
pub fn snapshot_info(bytes: &[u8]) -> Sres<SnapshotInfo> {
    let sections = parse_envelope(bytes)?;
    let table = sections
        .table
        .iter()
        .map(|&(tag, len, checksum)| (section_name(tag), len, checksum))
        .collect();
    let version = sections.version;
    let (schema, meta) = load_snapshot(bytes)?;
    let stats = schema.dispatch_cache_stats();
    Ok(SnapshotInfo {
        version,
        file_bytes: bytes.len(),
        sections: table,
        meta,
        n_names: schema.name_table().len(),
        n_types: schema.n_types(),
        n_attrs: schema.n_attrs(),
        n_gfs: schema.n_gfs(),
        n_methods: schema.n_methods(),
        cpl_entries: stats.cpl_entries,
        dispatch_entries: stats.dispatch_entries,
        index_entries: stats.index_entries,
    })
}

/// Saves a schema snapshot to a file.
pub fn write_snapshot_file(
    schema: &Schema,
    meta: &[(String, String)],
    path: impl AsRef<Path>,
) -> Sres<()> {
    std::fs::write(path, save_snapshot(schema, meta)).map_err(|e| SnapshotError::Io(e.to_string()))
}

/// Loads a schema snapshot from a file.
pub fn read_snapshot_file(path: impl AsRef<Path>) -> Sres<(Schema, Vec<(String, String)>)> {
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
    load_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyBuilder;

    fn sample_schema() -> Schema {
        let mut s = Schema::new();
        let person = s.add_type("Person", &[]).unwrap();
        let emp = s.add_type("Employee", &[person]).unwrap();
        let pay = s.add_attr("pay_rate", ValueType::FLOAT, emp).unwrap();
        s.add_attr("ssn", ValueType::STR, person).unwrap();
        s.add_accessors(pay).unwrap();
        let get_pay = s.gf_id("get_pay_rate").unwrap();
        let income = s.add_gf("income", 1, Some(ValueType::FLOAT)).unwrap();
        let mut bb = BodyBuilder::new();
        let v = bb.local("r", ValueType::FLOAT);
        bb.assign(v, Expr::call(get_pay, vec![Expr::Param(0)]));
        bb.ret(Expr::binop(BinOp::Mul, Expr::Var(v), Expr::int(40)));
        s.add_method(
            income,
            "income1",
            vec![Specializer::Type(emp)],
            MethodKind::General(bb.finish()),
            Some(ValueType::FLOAT),
        )
        .unwrap();
        s
    }

    #[test]
    fn roundtrip_preserves_schema_and_caches() {
        let s = sample_schema();
        let emp = s.type_id("Employee").unwrap();
        // Warm everything.
        for t in s.live_type_ids().collect::<Vec<_>>() {
            s.cpl(t).unwrap();
        }
        let income = s.gf_id("income").unwrap();
        s.most_specific(income, &[CallArg::Object(emp)]).unwrap();
        s.cached_applicability_index(emp).unwrap();
        let warm_stats = s.dispatch_cache_stats();
        assert!(warm_stats.cpl_entries > 0 && warm_stats.dispatch_entries > 0);

        let bytes = save_snapshot(&s, &[("tenant".into(), "acme".into())]);
        let (loaded, meta) = load_snapshot(&bytes).unwrap();
        assert_eq!(meta, vec![("tenant".to_string(), "acme".to_string())]);

        // Entities and names survive.
        assert_eq!(loaded.n_types(), s.n_types());
        assert_eq!(loaded.n_attrs(), s.n_attrs());
        assert_eq!(loaded.n_gfs(), s.n_gfs());
        assert_eq!(loaded.n_methods(), s.n_methods());
        assert_eq!(loaded.type_id("Employee").unwrap(), emp);
        assert_eq!(loaded.attr_name(s.attr_id("pay_rate").unwrap()), "pay_rate");
        assert_eq!(loaded.render_hierarchy(), s.render_hierarchy());
        assert_eq!(loaded.render_methods(), s.render_methods());

        // The caches arrive warm and current: reads hit without a rebuild.
        let cold = loaded.dispatch_cache_stats();
        assert_eq!(cold.cpl_entries, warm_stats.cpl_entries);
        assert_eq!(cold.dispatch_entries, warm_stats.dispatch_entries);
        assert_eq!(cold.index_entries, warm_stats.index_entries);
        loaded.cached_applicability_index(emp).unwrap();
        let after = loaded.dispatch_cache_stats();
        assert_eq!(after.index_misses, 0, "index must load warm");
        assert_eq!(after.index_hits, 1);
    }

    #[test]
    fn save_is_deterministic() {
        let s = sample_schema();
        let emp = s.type_id("Employee").unwrap();
        s.cached_applicability_index(emp).unwrap();
        let a = save_snapshot(&s, &[]);
        let b = save_snapshot(&s, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn loaded_schema_stays_mutable_and_invalidates() {
        let s = sample_schema();
        let bytes = save_snapshot(&s, &[]);
        let (mut loaded, _) = load_snapshot(&bytes).unwrap();
        let person = loaded.type_id("Person").unwrap();
        let t = loaded.add_type("Contractor", &[person]).unwrap();
        assert_eq!(loaded.cpl(t).unwrap().len(), 2);
        assert!(loaded.type_id("Contractor").is_ok());
    }

    #[test]
    fn inspect_reports_sections_and_counts() {
        let s = sample_schema();
        let bytes = save_snapshot(&s, &[("k".into(), "v".into())]);
        let info = snapshot_info(&bytes).unwrap();
        assert_eq!(info.version, SNAPSHOT_VERSION);
        assert_eq!(info.file_bytes, bytes.len());
        assert_eq!(info.n_types, s.n_types());
        assert_eq!(info.meta, vec![("k".to_string(), "v".to_string())]);
        let names: Vec<&str> = info.sections.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"names") && names.contains(&"dispatch"));
    }

    #[test]
    fn retired_types_stay_retired() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        s.remove_super_edge(b, a);
        s.retire_type(a).unwrap();
        let bytes = save_snapshot(&s, &[]);
        let (loaded, _) = load_snapshot(&bytes).unwrap();
        assert!(loaded.type_id("A").is_err());
        assert!(!loaded.is_live(a));
        // The retired name can be re-registered, as before the roundtrip.
        let mut loaded = loaded;
        loaded.add_type("A", &[]).unwrap();
    }
}
