//! Whole-schema validation.
//!
//! The builder APIs enforce local invariants at insertion time; `validate`
//! re-checks everything globally, which matters after the projection
//! algorithms have rewritten the hierarchy, moved attributes and retargeted
//! method signatures. Invariant I5 ("the refactored hierarchy is still a
//! well-formed schema") is exactly a `validate` call.
//!
//! Validation reports through the structured-diagnostics vocabulary of
//! [`crate::diag`]: [`Schema::validate_errors`] collects *every* failure
//! (not just the first), and [`Schema::validate_diagnostics`] maps each
//! one to a [`Diagnostic`] with a stable `TDL1xx` lint code and named
//! provenance spans. [`Schema::validate`] keeps the classic first-error
//! `Result` contract on top of the same checks.

use crate::attrs::ValueType;
use crate::body::{Expr, Stmt};
use crate::diag::{Diagnostic, LintCode, Span};
use crate::dispatch::CallArg;
use crate::error::{ModelError, Result};
use crate::ids::{AttrId, GfId, MethodId, TypeId};
use crate::methods::Specializer;
use crate::schema::Schema;

impl Schema {
    /// Validates the whole schema:
    ///
    /// 1. the hierarchy is acyclic;
    /// 2. every live type has a consistent class precedence list;
    /// 3. every attribute's owner lists it locally (and only the owner);
    /// 4. accessor methods access attributes available at their
    ///    specializer;
    /// 5. method specializer lists match their generic function's arity;
    /// 6. method bodies are well-formed: parameter/variable indices in
    ///    range, call arity correct, and call arguments statically
    ///    compatible with at least one method of the callee when the
    ///    callee has any methods;
    /// 7. assignments and returns are type-compatible (`value <= target`
    ///    for object types) — the §6.3 property the `Augment` pass exists
    ///    to preserve.
    ///
    /// Returns the first failure; [`Schema::validate_errors`] collects all
    /// of them.
    pub fn validate(&self) -> Result<()> {
        match self.validate_errors().into_iter().next() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Runs every validation check and returns *all* failures, in check
    /// order (hierarchy, then attributes, then methods). Empty means the
    /// schema is well-formed.
    pub fn validate_errors(&self) -> Vec<ModelError> {
        let mut errs = Vec::new();
        self.collect_hierarchy_errors(&mut errs);
        self.collect_attr_errors(&mut errs);
        self.collect_method_errors(&mut errs);
        errs
    }

    /// Runs every validation check and reports each failure as a
    /// structured [`Diagnostic`] (lint codes `TDL1xx`/`TDL002`, error
    /// severity, provenance spans with resolved names).
    pub fn validate_diagnostics(&self) -> Vec<Diagnostic> {
        self.validate_errors()
            .iter()
            .map(|e| self.diagnostic_for(e))
            .collect()
    }

    fn collect_hierarchy_errors(&self, errs: &mut Vec<ModelError>) {
        // Acyclicity via DFS coloring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.n_types();
        let mut color = vec![Color::White; n];
        let mut cyclic = false;
        for root in self.live_type_ids() {
            if color[root.index()] != Color::White {
                continue;
            }
            // Iterative DFS with explicit finish events.
            let mut stack: Vec<(TypeId, bool)> = vec![(root, false)];
            while let Some((t, finished)) = stack.pop() {
                if finished {
                    color[t.index()] = Color::Black;
                    continue;
                }
                match color[t.index()] {
                    Color::Black | Color::Grey => continue,
                    Color::White => {}
                }
                color[t.index()] = Color::Grey;
                stack.push((t, true));
                for link in self.type_(t).supers() {
                    match color[link.target.index()] {
                        Color::Grey => {
                            if !cyclic {
                                errs.push(ModelError::CyclicHierarchy(link.target));
                            }
                            cyclic = true;
                        }
                        Color::White => stack.push((link.target, false)),
                        Color::Black => {}
                    }
                }
            }
        }
        // CPL existence — only meaningful on an acyclic hierarchy.
        if !cyclic {
            for t in self.live_type_ids() {
                if let Err(e) = self.cpl(t) {
                    errs.push(e);
                }
            }
        }
    }

    fn collect_attr_errors(&self, errs: &mut Vec<ModelError>) {
        for a in self.attr_ids() {
            let def = self.attr(a);
            if self.check_type(def.owner).is_err() {
                errs.push(ModelError::BadTypeId(def.owner));
                continue;
            }
            if !self.type_(def.owner).local_attrs.contains(&a) {
                errs.push(ModelError::AttrNotListedAtOwner {
                    attr: a,
                    owner: def.owner,
                });
            }
        }
        for t in self.live_type_ids() {
            for &a in &self.type_(t).local_attrs {
                if self.check_attr(a).is_err() {
                    errs.push(ModelError::BadAttrId(a));
                    continue;
                }
                if self.attr(a).owner != t {
                    errs.push(ModelError::ForeignAttrListed {
                        ty: t,
                        attr: a,
                        owner: self.attr(a).owner,
                    });
                }
            }
        }
    }

    fn collect_method_errors(&self, errs: &mut Vec<ModelError>) {
        'methods: for m in self.method_ids() {
            let method = self.method(m);
            if self.check_gf(method.gf).is_err() {
                errs.push(ModelError::BadGfId(method.gf));
                continue;
            }
            let gf = self.gf(method.gf);
            if method.specializers.len() != gf.arity {
                errs.push(ModelError::ArityMismatch {
                    gf: method.gf,
                    expected: gf.arity,
                    got: method.specializers.len(),
                });
                continue;
            }
            for spec in &method.specializers {
                if let Specializer::Type(t) = spec {
                    if self.check_type(*t).is_err() {
                        errs.push(ModelError::BadTypeId(*t));
                        // Later checks assume in-range specializers.
                        continue 'methods;
                    }
                }
            }
            if let Some(attr) = method.kind.accessed_attr() {
                if self.check_attr(attr).is_err() {
                    errs.push(ModelError::BadAttrId(attr));
                    continue;
                }
                let Some(at) = method.specializers.first().and_then(|s| s.as_type()) else {
                    errs.push(ModelError::AccessorNoObjectArg { method: m });
                    continue;
                };
                if !self.attr_available_at(attr, at) {
                    errs.push(ModelError::AccessorAttrUnavailable { attr, at });
                    continue;
                }
            }
            if let Some(body) = method.body() {
                if let Err(e) = self.validate_body(m, body) {
                    errs.push(e);
                }
            }
        }
        // No generic function may hold two methods with identical
        // specializer tuples (ambiguous dispatch).
        for g in self.gf_ids() {
            let methods = &self.gf(g).methods;
            for (i, &m1) in methods.iter().enumerate() {
                for &m2 in &methods[i + 1..] {
                    if self.method(m1).specializers == self.method(m2).specializers {
                        errs.push(ModelError::DuplicateMethodSignatures {
                            gf: g,
                            first: m1,
                            second: m2,
                        });
                    }
                }
            }
        }
    }

    fn validate_body(&self, m: crate::ids::MethodId, body: &crate::body::Body) -> Result<()> {
        let method = self.method(m);
        for local in &body.locals {
            if let ValueType::Object(t) = local.ty {
                self.check_type(t)?;
            }
        }
        let mut result: Result<()> = Ok(());
        body.visit_exprs(&mut |e| {
            if result.is_err() {
                return;
            }
            match e {
                Expr::Param(i) if *i >= method.specializers.len() => {
                    result = Err(ModelError::BadParamIndex {
                        method: m,
                        index: *i,
                    });
                }
                Expr::Var(v) if v.index() >= body.locals.len() => {
                    result = Err(ModelError::BadVarIndex {
                        method: m,
                        index: v.index(),
                    });
                }
                Expr::Call { gf, args } => {
                    if self.check_gf(*gf).is_err() {
                        result = Err(ModelError::BadGfId(*gf));
                    } else if self.gf(*gf).arity != args.len() {
                        result = Err(ModelError::CallArityMismatch {
                            gf: *gf,
                            expected: self.gf(*gf).arity,
                            got: args.len(),
                        });
                    }
                }
                _ => {}
            }
        });
        result?;
        // Assignment / return compatibility (the §6.3 concern).
        let mut flow_err: Result<()> = Ok(());
        body.visit_stmts(&mut |s| {
            if flow_err.is_err() {
                return;
            }
            if let Stmt::Assign { var, value } = s {
                let Some(local) = body.locals.get(var.index()) else {
                    return;
                };
                if let ValueType::Object(target) = local.ty {
                    if let CallArg::Object(v) = self.static_expr_type(m, value) {
                        if !self.is_subtype(v, target) {
                            flow_err = Err(ModelError::AssignmentTypeError {
                                method: m,
                                value: v,
                                target,
                            });
                        }
                    }
                }
            }
        });
        flow_err
    }

    // -- diagnostics ------------------------------------------------------

    fn ty_name(&self, t: TypeId) -> String {
        if t.index() < self.n_types() {
            self.type_name(t).to_string()
        } else {
            t.to_string()
        }
    }

    fn attr_name_diag(&self, a: AttrId) -> String {
        if a.index() < self.n_attrs() {
            self.attr_name(a).to_string()
        } else {
            a.to_string()
        }
    }

    fn gf_name_diag(&self, g: GfId) -> String {
        if g.index() < self.n_gfs() {
            self.gf_name(g).to_string()
        } else {
            g.to_string()
        }
    }

    fn method_label_diag(&self, m: MethodId) -> String {
        if m.index() < self.n_methods() {
            self.method_label(m).to_string()
        } else {
            m.to_string()
        }
    }

    /// Maps one validation failure onto the structured-diagnostic
    /// vocabulary, resolving ids to names for provenance.
    pub(crate) fn diagnostic_for(&self, err: &ModelError) -> Diagnostic {
        match err {
            ModelError::CyclicHierarchy(t) => {
                let name = self.ty_name(*t);
                Diagnostic::new(
                    LintCode::HierarchyCycle,
                    format!("type hierarchy contains a cycle through `{name}`"),
                    vec![Span::ty(name)],
                )
            }
            ModelError::InconsistentPrecedence(t) => {
                let name = self.ty_name(*t);
                Diagnostic::new(
                    LintCode::PrecedenceConflict,
                    format!("no consistent class precedence list exists for `{name}`"),
                    vec![Span::ty(name)],
                )
            }
            ModelError::AttrNotListedAtOwner { attr, owner } => {
                let a = self.attr_name_diag(*attr);
                let t = self.ty_name(*owner);
                Diagnostic::new(
                    LintCode::AttrOwnership,
                    format!("attribute `{a}` is not listed locally at its owner `{t}`"),
                    vec![Span::attr(a), Span::ty(t)],
                )
            }
            ModelError::ForeignAttrListed { ty, attr, owner } => {
                let a = self.attr_name_diag(*attr);
                let t = self.ty_name(*ty);
                let o = self.ty_name(*owner);
                Diagnostic::new(
                    LintCode::AttrOwnership,
                    format!("type `{t}` lists attribute `{a}` whose owner is `{o}`"),
                    vec![Span::ty(t), Span::attr(a), Span::ty(o)],
                )
            }
            ModelError::ArityMismatch { gf, expected, got } => {
                let g = self.gf_name_diag(*gf);
                Diagnostic::new(
                    LintCode::MethodArity,
                    format!(
                        "a method of `{g}` has {got} specializers, \
                         the generic function expects {expected}"
                    ),
                    vec![Span::gf(g)],
                )
            }
            ModelError::AccessorAttrUnavailable { attr, at } => {
                let a = self.attr_name_diag(*attr);
                let t = self.ty_name(*at);
                Diagnostic::new(
                    LintCode::AccessorContract,
                    format!("accessor attribute `{a}` is not available at type `{t}`"),
                    vec![Span::attr(a), Span::ty(t)],
                )
            }
            ModelError::AccessorNoObjectArg { method } => {
                let m = self.method_label_diag(*method);
                Diagnostic::new(
                    LintCode::AccessorContract,
                    format!("accessor `{m}` lacks an object first argument"),
                    vec![Span::method(m)],
                )
            }
            ModelError::DuplicateMethodSignatures { gf, first, second } => {
                let g = self.gf_name_diag(*gf);
                let m1 = self.method_label(*first);
                let m2 = self.method_label(*second);
                Diagnostic::new(
                    LintCode::DuplicateSignatures,
                    format!(
                        "generic function `{g}` has duplicate method signatures \
                         (`{m1}` and `{m2}`)"
                    ),
                    vec![Span::gf(g), Span::method(m1), Span::method(m2)],
                )
            }
            ModelError::AssignmentTypeError {
                method,
                value,
                target,
            } => {
                let m = self.method_label_diag(*method);
                let v = self.ty_name(*value);
                let t = self.ty_name(*target);
                Diagnostic::new(
                    LintCode::AssignmentTypeError,
                    format!(
                        "type error in `{m}`: assigning a `{v}` value into \
                         a variable of type `{t}`"
                    ),
                    vec![Span::method(m), Span::ty(v), Span::ty(t)],
                )
            }
            ModelError::BadParamIndex { method, index } => {
                let m = self.method_label_diag(*method);
                Diagnostic::new(
                    LintCode::BodyMalformed,
                    format!("body of `{m}` references parameter #{index} out of range"),
                    vec![Span::method(m)],
                )
            }
            ModelError::BadVarIndex { method, index } => {
                let m = self.method_label_diag(*method);
                Diagnostic::new(
                    LintCode::BodyMalformed,
                    format!("body of `{m}` references local variable #{index} out of range"),
                    vec![Span::method(m)],
                )
            }
            ModelError::CallArityMismatch { gf, expected, got } => {
                let g = self.gf_name_diag(*gf);
                Diagnostic::new(
                    LintCode::BodyMalformed,
                    format!("a call to `{g}` passes {got} arguments, expects {expected}"),
                    vec![Span::gf(g)],
                )
            }
            // Dangling ids, duplicate names and edge bookkeeping all fall
            // under "invalid reference".
            other => Diagnostic::new(LintCode::InvalidReference, other.to_string(), Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyBuilder;
    use crate::diag::Severity;
    use crate::methods::MethodKind;

    #[test]
    fn valid_schema_passes() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_accessors(x).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let get_x = s.gf_id("get_x").unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(b)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        s.validate().unwrap();
        assert!(s.validate_errors().is_empty());
        assert!(s.validate_diagnostics().is_empty());
    }

    #[test]
    fn bad_param_index_caught() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.expr(Expr::Param(4));
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        assert!(matches!(
            s.validate(),
            Err(ModelError::BadParamIndex { .. })
        ));
        let diags = s.validate_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::BodyMalformed);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].spans.iter().any(|sp| sp.name == "f1"));
    }

    #[test]
    fn call_arity_mismatch_caught() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let g = s.add_gf("g", 2, None).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(g, vec![Expr::Param(0)]); // g expects 2 args
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        assert!(matches!(
            s.validate(),
            Err(ModelError::CallArityMismatch { .. })
        ));
    }

    #[test]
    fn incompatible_assignment_caught() {
        // g: G; g <- (param of unrelated type C) where C is NOT <= G.
        let mut s = Schema::new();
        let g_ty = s.add_type("G", &[]).unwrap();
        let c_ty = s.add_type("C", &[]).unwrap(); // unrelated
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        let g = bb.local("g", ValueType::Object(g_ty));
        bb.assign(g, Expr::Param(0));
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(c_ty)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("type error"));
        let diags = s.validate_diagnostics();
        assert_eq!(diags[0].code, LintCode::AssignmentTypeError);
        assert!(diags[0].message.contains('C') && diags[0].message.contains('G'));
    }

    #[test]
    fn dangling_specializer_caught() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let m = s
            .add_method(
                f,
                "f1",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        // Simulate corruption: point the specializer at a bogus type.
        s.method_mut(m).specializers = vec![Specializer::Type(TypeId(99))];
        assert!(matches!(s.validate(), Err(ModelError::BadTypeId(_))));
        let diags = s.validate_diagnostics();
        assert_eq!(diags[0].code, LintCode::InvalidReference);
    }

    #[test]
    fn multiple_failures_are_all_collected() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        // Failure 1: bad parameter index in f1's body.
        let mut bb = BodyBuilder::new();
        bb.expr(Expr::Param(7));
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        // Failures 2+3: duplicate signatures, injected behind the
        // builder's back so validation has something to find.
        let g = s.add_gf("g", 1, None).unwrap();
        s.add_method(
            g,
            "g1",
            vec![Specializer::Type(a)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let m2 = s
            .add_method(
                g,
                "g2",
                vec![Specializer::Prim(crate::attrs::PrimType::Int)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        s.method_mut(m2).specializers = vec![Specializer::Type(a)];
        let errs = s.validate_errors();
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(matches!(errs[0], ModelError::BadParamIndex { .. }));
        assert!(matches!(
            errs[1],
            ModelError::DuplicateMethodSignatures { .. }
        ));
        // validate() still reports the first.
        assert!(matches!(
            s.validate(),
            Err(ModelError::BadParamIndex { .. })
        ));
    }
}
