//! Whole-schema validation.
//!
//! The builder APIs enforce local invariants at insertion time; `validate`
//! re-checks everything globally, which matters after the projection
//! algorithms have rewritten the hierarchy, moved attributes and retargeted
//! method signatures. Invariant I5 ("the refactored hierarchy is still a
//! well-formed schema") is exactly a `validate` call.

use crate::attrs::ValueType;
use crate::body::{Expr, Stmt};
use crate::dispatch::CallArg;
use crate::error::{ModelError, Result};
use crate::ids::TypeId;
use crate::methods::Specializer;
use crate::schema::Schema;

impl Schema {
    /// Validates the whole schema:
    ///
    /// 1. the hierarchy is acyclic;
    /// 2. every live type has a consistent class precedence list;
    /// 3. every attribute's owner lists it locally (and only the owner);
    /// 4. accessor methods access attributes available at their
    ///    specializer;
    /// 5. method specializer lists match their generic function's arity;
    /// 6. method bodies are well-formed: parameter/variable indices in
    ///    range, call arity correct, and call arguments statically
    ///    compatible with at least one method of the callee when the
    ///    callee has any methods;
    /// 7. assignments and returns are type-compatible (`value <= target`
    ///    for object types) — the §6.3 property the `Augment` pass exists
    ///    to preserve.
    pub fn validate(&self) -> Result<()> {
        self.validate_hierarchy()?;
        self.validate_attrs()?;
        self.validate_methods()?;
        Ok(())
    }

    fn validate_hierarchy(&self) -> Result<()> {
        // Acyclicity via DFS coloring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.n_types();
        let mut color = vec![Color::White; n];
        for root in self.live_type_ids() {
            if color[root.index()] != Color::White {
                continue;
            }
            // Iterative DFS with explicit finish events.
            let mut stack: Vec<(TypeId, bool)> = vec![(root, false)];
            while let Some((t, finished)) = stack.pop() {
                if finished {
                    color[t.index()] = Color::Black;
                    continue;
                }
                match color[t.index()] {
                    Color::Black => continue,
                    Color::Grey => return Err(ModelError::CyclicHierarchy(t)),
                    Color::White => {}
                }
                color[t.index()] = Color::Grey;
                stack.push((t, true));
                for link in self.type_(t).supers() {
                    match color[link.target.index()] {
                        Color::Grey => return Err(ModelError::CyclicHierarchy(link.target)),
                        Color::White => stack.push((link.target, false)),
                        Color::Black => {}
                    }
                }
            }
        }
        // CPL existence.
        for t in self.live_type_ids() {
            self.cpl(t)?;
        }
        Ok(())
    }

    fn validate_attrs(&self) -> Result<()> {
        for a in self.attr_ids() {
            let def = self.attr(a);
            self.check_type(def.owner)?;
            if !self.type_(def.owner).local_attrs.contains(&a) {
                return Err(ModelError::Invalid(format!(
                    "attribute {a} ({}) not listed locally at its owner {}",
                    def.name,
                    self.type_name(def.owner)
                )));
            }
        }
        for t in self.live_type_ids() {
            for &a in &self.type_(t).local_attrs {
                self.check_attr(a)?;
                if self.attr(a).owner != t {
                    return Err(ModelError::Invalid(format!(
                        "type {} lists attribute {a} whose owner is {}",
                        self.type_name(t),
                        self.type_name(self.attr(a).owner)
                    )));
                }
            }
        }
        Ok(())
    }

    fn validate_methods(&self) -> Result<()> {
        for m in self.method_ids() {
            let method = self.method(m);
            self.check_gf(method.gf)?;
            let gf = self.gf(method.gf);
            if method.specializers.len() != gf.arity {
                return Err(ModelError::ArityMismatch {
                    gf: method.gf,
                    expected: gf.arity,
                    got: method.specializers.len(),
                });
            }
            for spec in &method.specializers {
                if let Specializer::Type(t) = spec {
                    self.check_type(*t)?;
                }
            }
            if let Some(attr) = method.kind.accessed_attr() {
                self.check_attr(attr)?;
                let at = method
                    .specializers
                    .first()
                    .and_then(|s| s.as_type())
                    .ok_or_else(|| {
                        ModelError::Invalid(format!(
                            "accessor {} lacks an object first argument",
                            method.label
                        ))
                    })?;
                if !self.attr_available_at(attr, at) {
                    return Err(ModelError::AccessorAttrUnavailable { attr, at });
                }
            }
            if let Some(body) = method.body() {
                self.validate_body(m, body)?;
            }
        }
        // No generic function may hold two methods with identical
        // specializer tuples (ambiguous dispatch).
        for g in self.gf_ids() {
            let methods = &self.gf(g).methods;
            for (i, &m1) in methods.iter().enumerate() {
                for &m2 in &methods[i + 1..] {
                    if self.method(m1).specializers == self.method(m2).specializers {
                        return Err(ModelError::Invalid(format!(
                            "generic function `{}` has duplicate method signatures ({} and {})",
                            self.gf(g).name,
                            self.method(m1).label,
                            self.method(m2).label
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_body(&self, m: crate::ids::MethodId, body: &crate::body::Body) -> Result<()> {
        let method = self.method(m);
        for local in &body.locals {
            if let ValueType::Object(t) = local.ty {
                self.check_type(t)?;
            }
        }
        let mut result: Result<()> = Ok(());
        body.visit_exprs(&mut |e| {
            if result.is_err() {
                return;
            }
            match e {
                Expr::Param(i) if *i >= method.specializers.len() => {
                    result = Err(ModelError::BadParamIndex {
                        method: m,
                        index: *i,
                    });
                }
                Expr::Var(v) if v.index() >= body.locals.len() => {
                    result = Err(ModelError::BadVarIndex {
                        method: m,
                        index: v.index(),
                    });
                }
                Expr::Call { gf, args } => {
                    if self.check_gf(*gf).is_err() {
                        result = Err(ModelError::BadGfId(*gf));
                    } else if self.gf(*gf).arity != args.len() {
                        result = Err(ModelError::CallArityMismatch {
                            gf: *gf,
                            expected: self.gf(*gf).arity,
                            got: args.len(),
                        });
                    }
                }
                _ => {}
            }
        });
        result?;
        // Assignment / return compatibility (the §6.3 concern).
        let mut flow_err: Result<()> = Ok(());
        body.visit_stmts(&mut |s| {
            if flow_err.is_err() {
                return;
            }
            if let Stmt::Assign { var, value } = s {
                let Some(local) = body.locals.get(var.index()) else {
                    return;
                };
                if let ValueType::Object(target) = local.ty {
                    if let CallArg::Object(v) = self.static_expr_type(m, value) {
                        if !self.is_subtype(v, target) {
                            flow_err = Err(ModelError::Invalid(format!(
                                "type error in `{}`: assigning {} into variable `{}` of type {}",
                                self.method(m).label,
                                self.type_name(v),
                                local.name,
                                self.type_name(target)
                            )));
                        }
                    }
                }
            }
        });
        flow_err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyBuilder;
    use crate::methods::MethodKind;

    #[test]
    fn valid_schema_passes() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_accessors(x).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let get_x = s.gf_id("get_x").unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(b)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        s.validate().unwrap();
    }

    #[test]
    fn bad_param_index_caught() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.expr(Expr::Param(4));
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        assert!(matches!(
            s.validate(),
            Err(ModelError::BadParamIndex { .. })
        ));
    }

    #[test]
    fn call_arity_mismatch_caught() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let g = s.add_gf("g", 2, None).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(g, vec![Expr::Param(0)]); // g expects 2 args
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        assert!(matches!(
            s.validate(),
            Err(ModelError::CallArityMismatch { .. })
        ));
    }

    #[test]
    fn incompatible_assignment_caught() {
        // g: G; g <- (param of unrelated type C) where C is NOT <= G.
        let mut s = Schema::new();
        let g_ty = s.add_type("G", &[]).unwrap();
        let c_ty = s.add_type("C", &[]).unwrap(); // unrelated
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        let g = bb.local("g", ValueType::Object(g_ty));
        bb.assign(g, Expr::Param(0));
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(c_ty)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("type error"));
    }

    #[test]
    fn dangling_specializer_caught() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let m = s
            .add_method(
                f,
                "f1",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        // Simulate corruption: point the specializer at a bogus type.
        s.method_mut(m).specializers = vec![Specializer::Type(TypeId(99))];
        assert!(matches!(s.validate(), Err(ModelError::BadTypeId(_))));
    }
}
