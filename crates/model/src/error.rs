//! Error type for schema construction and queries.

use crate::ids::{AttrId, GfId, MethodId, TypeId};
use std::fmt;

/// Errors raised by schema construction, validation and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A type name was defined twice.
    DuplicateTypeName(String),
    /// An attribute name was defined twice. The paper assumes globally
    /// unique attribute names (§2); the schema enforces that assumption.
    DuplicateAttrName(String),
    /// A generic-function name was defined twice.
    DuplicateGfName(String),
    /// Lookup of a type by name failed.
    UnknownTypeName(String),
    /// Lookup of an attribute by name failed.
    UnknownAttrName(String),
    /// Lookup of a generic function by name failed.
    UnknownGfName(String),
    /// A referenced `TypeId` is out of range for this schema.
    BadTypeId(TypeId),
    /// A referenced `AttrId` is out of range for this schema.
    BadAttrId(AttrId),
    /// A referenced `GfId` is out of range for this schema.
    BadGfId(GfId),
    /// A referenced `MethodId` is out of range for this schema.
    BadMethodId(MethodId),
    /// Adding a supertype edge would create a cycle in the hierarchy.
    CycleIntroduced {
        /// The would-be subtype.
        sub: TypeId,
        /// The would-be supertype.
        sup: TypeId,
    },
    /// A supertype edge was added twice.
    DuplicateSuperEdge {
        /// The subtype.
        sub: TypeId,
        /// The supertype.
        sup: TypeId,
    },
    /// A method was defined with the wrong number of specializers for its
    /// generic function.
    ArityMismatch {
        /// The generic function.
        gf: GfId,
        /// Its declared arity.
        expected: usize,
        /// The offending specializer count.
        got: usize,
    },
    /// An accessor method was declared for an attribute that is not
    /// available (locally or by inheritance) at its specializer.
    AccessorAttrUnavailable {
        /// The accessed attribute.
        attr: AttrId,
        /// The accessor's specializer type.
        at: TypeId,
    },
    /// A method body references a parameter index out of range.
    BadParamIndex {
        /// The offending method.
        method: MethodId,
        /// The out-of-range parameter index.
        index: usize,
    },
    /// A method body references an undeclared local variable.
    BadVarIndex {
        /// The offending method.
        method: MethodId,
        /// The undeclared variable index.
        index: usize,
    },
    /// A call in a method body passes the wrong number of arguments.
    CallArityMismatch {
        /// The called generic function.
        gf: GfId,
        /// Its declared arity.
        expected: usize,
        /// The argument count at the call site.
        got: usize,
    },
    /// An attribute's declared owner does not list it locally.
    AttrNotListedAtOwner {
        /// The attribute.
        attr: AttrId,
        /// Its declared owner, which is missing the local listing.
        owner: TypeId,
    },
    /// A type lists an attribute in its local set that is owned elsewhere.
    ForeignAttrListed {
        /// The type with the bogus local listing.
        ty: TypeId,
        /// The listed attribute.
        attr: AttrId,
        /// The attribute's actual owner.
        owner: TypeId,
    },
    /// An accessor method's first argument does not dispatch on an object
    /// type (accessors read or write one attribute of their object).
    AccessorNoObjectArg {
        /// The offending accessor method.
        method: MethodId,
    },
    /// Two methods of one generic function have identical specializer
    /// tuples, so dispatch could never distinguish them.
    DuplicateMethodSignatures {
        /// The generic function.
        gf: GfId,
        /// The first method of the clashing pair.
        first: MethodId,
        /// The second method of the clashing pair.
        second: MethodId,
    },
    /// A body assignment stores a value whose static type is incompatible
    /// with the target variable's declared type.
    AssignmentTypeError {
        /// The method whose body contains the assignment.
        method: MethodId,
        /// The static type of the assigned value.
        value: TypeId,
        /// The declared type of the target variable.
        target: TypeId,
    },
    /// No class precedence list exists (inconsistent precedence constraints).
    InconsistentPrecedence(TypeId),
    /// The hierarchy contains a cycle (checked during validation).
    CyclicHierarchy(TypeId),
    /// A free-form validation failure with context.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateTypeName(n) => write!(f, "duplicate type name `{n}`"),
            ModelError::DuplicateAttrName(n) => write!(f, "duplicate attribute name `{n}`"),
            ModelError::DuplicateGfName(n) => write!(f, "duplicate generic function name `{n}`"),
            ModelError::UnknownTypeName(n) => write!(f, "unknown type name `{n}`"),
            ModelError::UnknownAttrName(n) => write!(f, "unknown attribute name `{n}`"),
            ModelError::UnknownGfName(n) => write!(f, "unknown generic function name `{n}`"),
            ModelError::BadTypeId(t) => write!(f, "type id {t} out of range"),
            ModelError::BadAttrId(a) => write!(f, "attribute id {a} out of range"),
            ModelError::BadGfId(g) => write!(f, "generic function id {g} out of range"),
            ModelError::BadMethodId(m) => write!(f, "method id {m} out of range"),
            ModelError::CycleIntroduced { sub, sup } => {
                write!(f, "edge {sub} <= {sup} would create a cycle")
            }
            ModelError::DuplicateSuperEdge { sub, sup } => {
                write!(f, "edge {sub} <= {sup} already exists")
            }
            ModelError::ArityMismatch { gf, expected, got } => write!(
                f,
                "method of {gf} has {got} specializers, generic function expects {expected}"
            ),
            ModelError::AccessorAttrUnavailable { attr, at } => {
                write!(f, "accessor attribute {attr} is not available at type {at}")
            }
            ModelError::BadParamIndex { method, index } => {
                write!(
                    f,
                    "method {method} references parameter #{index} out of range"
                )
            }
            ModelError::BadVarIndex { method, index } => {
                write!(
                    f,
                    "method {method} references local variable #{index} out of range"
                )
            }
            ModelError::CallArityMismatch { gf, expected, got } => {
                write!(f, "call to {gf} passes {got} arguments, expects {expected}")
            }
            ModelError::AttrNotListedAtOwner { attr, owner } => {
                write!(
                    f,
                    "attribute {attr} not listed locally at its owner {owner}"
                )
            }
            ModelError::ForeignAttrListed { ty, attr, owner } => {
                write!(f, "type {ty} lists attribute {attr} whose owner is {owner}")
            }
            ModelError::AccessorNoObjectArg { method } => {
                write!(f, "accessor method {method} lacks an object first argument")
            }
            ModelError::DuplicateMethodSignatures { gf, first, second } => {
                write!(
                    f,
                    "generic function {gf} has duplicate method signatures ({first} and {second})"
                )
            }
            ModelError::AssignmentTypeError {
                method,
                value,
                target,
            } => {
                write!(
                    f,
                    "type error in method {method}: assigning a {value} value into a variable of type {target}"
                )
            }
            ModelError::InconsistentPrecedence(t) => {
                write!(f, "no class precedence list exists for type {t}")
            }
            ModelError::CyclicHierarchy(t) => {
                write!(f, "type hierarchy contains a cycle through {t}")
            }
            ModelError::Invalid(msg) => write!(f, "invalid schema: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = ModelError::CycleIntroduced {
            sub: TypeId(1),
            sup: TypeId(2),
        };
        assert_eq!(e.to_string(), "edge T1 <= T2 would create a cycle");
        let e = ModelError::UnknownTypeName("Foo".into());
        assert!(e.to_string().contains("Foo"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(ModelError::BadTypeId(TypeId(0)));
    }
}
