//! A small imperative IR for method bodies.
//!
//! The paper's algorithms need to see *inside* method bodies:
//!
//! * `IsApplicable` (§4.1) walks "all generic function calls in the method
//!   body that are relevant to the arguments of m" — found by data-flow
//!   analysis over this IR ([`crate::dataflow`]).
//! * Method-body processing (§6.3) re-types variables along def-use chains
//!   ("the reachability set for the use of all parameters that are to be
//!   converted to their corresponding surrogate types").
//!
//! The IR is deliberately tiny: straight-line statements, `if`, assignment,
//! generic-function calls, a return, and just enough expression forms to
//! write the paper's running examples and realistic demo methods. It has no
//! loops — recursion happens through generic-function calls, which is
//! exactly the case the paper's cycle handling addresses.

use crate::attrs::ValueType;
use crate::ids::{GfId, VarId};
use std::fmt;

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// The null object reference.
    Null,
}

/// Binary operators usable inside bodies (for realistic demo methods;
/// the derivation algorithms treat them as opaque primitive computations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (ints, floats) or concatenation (strings).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Less-than comparison.
    Lt,
    /// Equality comparison.
    Eq,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Eq => "==",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The i-th formal parameter of the enclosing method.
    Param(usize),
    /// A local variable.
    Var(VarId),
    /// A literal constant.
    Lit(Literal),
    /// A call to a generic function — dispatch happens on the runtime
    /// argument types (multi-methods, §2).
    Call {
        /// Called generic function.
        gf: GfId,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A primitive binary operation.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a call expression.
    pub fn call(gf: GfId, args: Vec<Expr>) -> Expr {
        Expr::Call { gf, args }
    }

    /// Convenience constructor for a binary operation.
    pub fn binop(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::BinOp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Literal::Int(v))
    }

    /// Visits this expression and all sub-expressions, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::BinOp { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Param(_) | Expr::Var(_) | Expr::Lit(_) => {}
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var <- expr` — variable binding / assignment (the paper's `g ← c`).
    Assign {
        /// Target local variable.
        var: VarId,
        /// Assigned expression.
        value: Expr,
    },
    /// Evaluate an expression for its effects (typically a call).
    Expr(Expr),
    /// Two-way conditional.
    If {
        /// Condition expression (boolean).
        cond: Expr,
        /// Statements executed when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise.
        else_branch: Vec<Stmt>,
    },
    /// Return a value from the method.
    Return(Expr),
}

/// A declared local variable.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalVar {
    /// Variable name (for display only).
    pub name: String,
    /// Declared static type. §6.3 re-types object-typed locals to their
    /// surrogate types when the def-use analysis requires it.
    pub ty: ValueType,
}

/// A method body: declared locals plus a statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Body {
    /// Declared local variables; [`VarId`] indexes this vector.
    pub locals: Vec<LocalVar>,
    /// Top-level statement sequence.
    pub stmts: Vec<Stmt>,
}

impl Body {
    /// Creates an empty body.
    pub fn new() -> Body {
        Body::default()
    }

    /// Visits every statement in the body, including nested `if` branches,
    /// in source order.
    pub fn visit_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                if let Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } = s
                {
                    walk(then_branch, f);
                    walk(else_branch, f);
                }
            }
        }
        walk(&self.stmts, f);
    }

    /// Visits every expression appearing anywhere in the body (including
    /// sub-expressions), in source order.
    pub fn visit_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        self.visit_stmts(&mut |s| match s {
            Stmt::Assign { value, .. } | Stmt::Expr(value) | Stmt::Return(value) => {
                value.visit(f);
            }
            Stmt::If { cond, .. } => cond.visit(f),
        });
    }

    /// Collects every generic-function call expression in the body,
    /// outermost-first within each statement.
    pub fn calls(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.visit_exprs(&mut |e| {
            if matches!(e, Expr::Call { .. }) {
                out.push(e);
            }
        });
        out
    }
}

/// Fluent builder for [`Body`] used by tests, examples and the workload
/// generator.
#[derive(Debug, Default)]
pub struct BodyBuilder {
    body: Body,
}

impl BodyBuilder {
    /// Creates a new empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a local variable, returning its id.
    pub fn local(&mut self, name: impl Into<String>, ty: ValueType) -> VarId {
        let id = VarId::from_index(self.body.locals.len());
        self.body.locals.push(LocalVar {
            name: name.into(),
            ty,
        });
        id
    }

    /// Appends `var <- value`.
    pub fn assign(&mut self, var: VarId, value: Expr) -> &mut Self {
        self.body.stmts.push(Stmt::Assign { var, value });
        self
    }

    /// Appends a statement-position call `gf(args)`.
    pub fn call(&mut self, gf: GfId, args: Vec<Expr>) -> &mut Self {
        self.body.stmts.push(Stmt::Expr(Expr::call(gf, args)));
        self
    }

    /// Appends an arbitrary expression statement.
    pub fn expr(&mut self, e: Expr) -> &mut Self {
        self.body.stmts.push(Stmt::Expr(e));
        self
    }

    /// Appends `return value`.
    pub fn ret(&mut self, value: Expr) -> &mut Self {
        self.body.stmts.push(Stmt::Return(value));
        self
    }

    /// Appends an `if` statement.
    pub fn if_(&mut self, cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> &mut Self {
        self.body.stmts.push(Stmt::If {
            cond,
            then_branch,
            else_branch,
        });
        self
    }

    /// Finishes the builder, yielding the body.
    pub fn finish(self) -> Body {
        self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_shape() {
        let mut b = BodyBuilder::new();
        let g = b.local("g", ValueType::Object(crate::ids::TypeId(3)));
        b.assign(g, Expr::Param(0));
        b.call(GfId(1), vec![Expr::Param(0)]);
        b.ret(Expr::Var(g));
        let body = b.finish();
        assert_eq!(body.locals.len(), 1);
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(body.stmts[0], Stmt::Assign { .. }));
        assert!(matches!(body.stmts[2], Stmt::Return(_)));
    }

    #[test]
    fn calls_finds_nested_calls() {
        // return f(g(p0), 1 + h(p1))
        let inner_g = Expr::call(GfId(1), vec![Expr::Param(0)]);
        let inner_h = Expr::call(GfId(2), vec![Expr::Param(1)]);
        let sum = Expr::binop(BinOp::Add, Expr::int(1), inner_h);
        let outer = Expr::call(GfId(0), vec![inner_g, sum]);
        let body = Body {
            locals: vec![],
            stmts: vec![Stmt::Return(outer)],
        };
        let calls = body.calls();
        assert_eq!(calls.len(), 3);
        // Outermost first.
        assert!(matches!(calls[0], Expr::Call { gf: GfId(0), .. }));
    }

    #[test]
    fn visit_stmts_descends_into_if() {
        let body = Body {
            locals: vec![],
            stmts: vec![Stmt::If {
                cond: Expr::Lit(Literal::Bool(true)),
                then_branch: vec![Stmt::Return(Expr::int(1))],
                else_branch: vec![Stmt::Return(Expr::int(2))],
            }],
        };
        let mut n = 0;
        body.visit_stmts(&mut |_| n += 1);
        assert_eq!(n, 3); // if + 2 returns
    }

    #[test]
    fn visit_exprs_covers_condition() {
        let body = Body {
            locals: vec![],
            stmts: vec![Stmt::If {
                cond: Expr::call(GfId(5), vec![]),
                then_branch: vec![],
                else_branch: vec![],
            }],
        };
        assert_eq!(body.calls().len(), 1);
    }
}
