//! Type nodes and the multiple-inheritance hierarchy (a DAG, §2).
//!
//! Direct supertypes carry an explicit integer *precedence* — the paper
//! annotates subtype→supertype arrows with integers, "a lower number
//! signifying higher precedence". State factorization (§5) inserts each
//! surrogate as the **highest-precedence** direct supertype of its source so
//! that the split is transparent to method lookup.

use crate::attrs::AttrDef;
use crate::error::{ModelError, Result};
use crate::ids::{AttrId, NameId, TypeId};
use crate::schema::Schema;
use std::collections::BTreeSet;

/// A directed edge from a subtype to one of its direct supertypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperLink {
    /// The supertype.
    pub target: TypeId,
    /// Precedence of this supertype among the subtype's direct supertypes;
    /// lower is higher precedence. Original schemas number supertypes from
    /// 1; factorization reserves 0 (and below) for surrogates.
    pub prec: i32,
}

/// Whether a type existed originally or was spun off by factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeOrigin {
    /// Present in the user-defined schema.
    Original,
    /// A surrogate created by `FactorState`/`Augment` for the given source
    /// type. Derived view types are themselves surrogates (§5).
    Surrogate {
        /// The type this surrogate was spun off from.
        source: TypeId,
    },
}

/// One type (class) in the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeNode {
    /// Unique type name, interned in the schema's arena (resolve with
    /// [`crate::Schema::type_name`] or [`crate::Schema::name`]).
    pub name: NameId,
    /// Attributes locally defined at this type (state moves between a type
    /// and its surrogate during factorization).
    pub local_attrs: Vec<AttrId>,
    /// Direct supertypes, kept sorted by ascending precedence.
    pub(crate) supers: Vec<SuperLink>,
    /// Original or surrogate.
    pub origin: TypeOrigin,
    /// True once the type has been retired by the surrogate-minimization
    /// pass; retired types are skipped by all queries.
    pub(crate) dead: bool,
}

impl TypeNode {
    /// Direct supertypes in precedence order (highest precedence first).
    #[inline]
    pub fn supers(&self) -> &[SuperLink] {
        &self.supers
    }

    /// Direct supertype ids in precedence order.
    pub fn super_ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.supers.iter().map(|l| l.target)
    }

    /// True if this node is a surrogate.
    #[inline]
    pub fn is_surrogate(&self) -> bool {
        matches!(self.origin, TypeOrigin::Surrogate { .. })
    }

    /// The source type if this node is a surrogate.
    #[inline]
    pub fn surrogate_source(&self) -> Option<TypeId> {
        match self.origin {
            TypeOrigin::Surrogate { source } => Some(source),
            TypeOrigin::Original => None,
        }
    }
}

impl Schema {
    /// Adds a direct supertype edge `sub <= sup` with the given precedence,
    /// keeping the supertype list sorted by precedence (stable for ties:
    /// later insertions with an equal precedence sort after existing ones).
    ///
    /// Fails if the edge already exists or would create a cycle.
    pub fn add_super_with_prec(&mut self, sub: TypeId, sup: TypeId, prec: i32) -> Result<()> {
        self.check_type(sub)?;
        self.check_type(sup)?;
        if sub == sup || self.is_subtype(sup, sub) {
            return Err(ModelError::CycleIntroduced { sub, sup });
        }
        if self.type_(sub).supers.iter().any(|l| l.target == sup) {
            return Err(ModelError::DuplicateSuperEdge { sub, sup });
        }
        let node = self.type_node_mut(sub);
        let pos = node.supers.partition_point(|l| l.prec <= prec);
        node.supers.insert(pos, SuperLink { target: sup, prec });
        Ok(())
    }

    /// Adds `sup` as the **highest-precedence** direct supertype of `sub`
    /// (the §5.1 step "make T̂ a supertype of T such that T̂ has highest
    /// precedence among the supertypes of T"). Returns the precedence used.
    pub fn add_super_highest(&mut self, sub: TypeId, sup: TypeId) -> Result<i32> {
        let prec = self
            .type_(sub)
            .supers
            .first()
            .map(|l| l.prec - 1)
            .unwrap_or(0)
            .min(0);
        self.add_super_with_prec(sub, sup, prec)?;
        Ok(prec)
    }

    /// Removes the direct edge `sub <= sup`, if present. Returns whether an
    /// edge was removed.
    pub fn remove_super_edge(&mut self, sub: TypeId, sup: TypeId) -> bool {
        let node = self.type_node_mut(sub);
        let before = node.supers.len();
        node.supers.retain(|l| l.target != sup);
        node.supers.len() != before
    }

    /// Reflexive-transitive subtype test: `a <= b` iff every instance of
    /// `a` is an instance of `b` (§2).
    pub fn is_subtype(&self, a: TypeId, b: TypeId) -> bool {
        if a == b {
            return true;
        }
        let mut visited = vec![false; self.n_types()];
        let mut stack = vec![a];
        visited[a.index()] = true;
        while let Some(t) = stack.pop() {
            for link in &self.type_(t).supers {
                let s = link.target;
                if s == b {
                    return true;
                }
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Proper (irreflexive) subtype test `a < b`.
    #[inline]
    pub fn is_proper_subtype(&self, a: TypeId, b: TypeId) -> bool {
        a != b && self.is_subtype(a, b)
    }

    /// All proper supertypes of `t`, in BFS order from `t` (deduplicated —
    /// attributes of a shared ancestor are "inherited only once", §2).
    pub fn ancestors(&self, t: TypeId) -> Vec<TypeId> {
        let mut visited = vec![false; self.n_types()];
        visited[t.index()] = true;
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(t);
        while let Some(cur) = queue.pop_front() {
            for link in &self.type_(cur).supers {
                let s = link.target;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    order.push(s);
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// `t` followed by its proper supertypes.
    pub fn ancestors_inclusive(&self, t: TypeId) -> Vec<TypeId> {
        let mut v = Vec::with_capacity(8);
        v.push(t);
        v.extend(self.ancestors(t));
        v
    }

    /// All proper subtypes of `t` (types whose instances are instances of
    /// `t`), in no particular order.
    pub fn descendants(&self, t: TypeId) -> Vec<TypeId> {
        self.live_type_ids()
            .filter(|&x| x != t && self.is_subtype(x, t))
            .collect()
    }

    /// Direct subtypes of `t` (types with a direct edge to `t`).
    pub fn direct_subtypes(&self, t: TypeId) -> Vec<TypeId> {
        self.live_type_ids()
            .filter(|&x| self.type_(x).supers.iter().any(|l| l.target == t))
            .collect()
    }

    /// The cumulative state of `t`: local attributes plus everything
    /// inherited (each inherited once). This is the quantity invariant I1
    /// (state preservation) compares before and after factorization.
    pub fn cumulative_attrs(&self, t: TypeId) -> BTreeSet<AttrId> {
        let mut out = BTreeSet::new();
        for ty in self.ancestors_inclusive(t) {
            out.extend(self.type_(ty).local_attrs.iter().copied());
        }
        out
    }

    /// True iff attribute `attr` is local to `t` or to one of its
    /// supertypes — the paper's "available at" (§5.1).
    pub fn attr_available_at(&self, attr: AttrId, t: TypeId) -> bool {
        self.ancestors_inclusive(t)
            .iter()
            .any(|&ty| self.type_(ty).local_attrs.contains(&attr))
    }

    /// Moves a (locally defined) attribute from its current owner to `to`,
    /// preserving the attribute's identity. Used by `FactorState` ("move a
    /// to T̂").
    pub fn move_attr(&mut self, attr: AttrId, to: TypeId) -> Result<()> {
        self.check_attr(attr)?;
        self.check_type(to)?;
        let from = self.attr(attr).owner;
        if from == to {
            return Ok(());
        }
        let from_node = self.type_node_mut(from);
        let pos = from_node
            .local_attrs
            .iter()
            .position(|&a| a == attr)
            .ok_or_else(|| {
                ModelError::Invalid(format!("attribute {attr} is not local to its owner {from}"))
            })?;
        from_node.local_attrs.remove(pos);
        // Local attribute lists are kept in attribute-id order (creation
        // order), so moving an attribute away and back restores the
        // original list exactly — `unproject` depends on this.
        let to_node = self.type_node_mut(to);
        let insert_at = to_node.local_attrs.partition_point(|&x| x < attr);
        to_node.local_attrs.insert(insert_at, attr);
        self.attr_mut(attr).owner = to;
        Ok(())
    }

    /// Types with no supertypes (the hierarchy may be a forest of DAGs).
    pub fn roots(&self) -> Vec<TypeId> {
        self.live_type_ids()
            .filter(|&t| self.type_(t).supers.is_empty())
            .collect()
    }

    /// Retires a type: it must have no remaining sub/supertype edges, no
    /// local attributes, and no method mentioning it. Used by the
    /// surrogate-minimization pass (§7 future work). The id remains
    /// allocated but is skipped by all queries.
    pub fn retire_type(&mut self, t: TypeId) -> Result<()> {
        self.check_type(t)?;
        if !self.type_(t).supers.is_empty() {
            return Err(ModelError::Invalid(format!(
                "cannot retire {t}: it still has supertypes"
            )));
        }
        if !self.direct_subtypes(t).is_empty() {
            return Err(ModelError::Invalid(format!(
                "cannot retire {t}: it still has direct subtypes"
            )));
        }
        if !self.type_(t).local_attrs.is_empty() {
            return Err(ModelError::Invalid(format!(
                "cannot retire {t}: it still owns attributes"
            )));
        }
        let mentioned = self
            .method_ids()
            .any(|m| self.method(m).type_specializers().any(|(_, ty)| ty == t));
        if mentioned {
            return Err(ModelError::Invalid(format!(
                "cannot retire {t}: a method specializes on it"
            )));
        }
        self.unregister_type_name(t);
        self.type_node_mut(t).dead = true;
        Ok(())
    }

    /// Accessor used within the crate to reach node internals. Handing out
    /// `&mut` to a node may change its edges, origin or liveness, so the
    /// cache is told the type (and, transitively, its subtypes) is dirty.
    pub(crate) fn type_node_mut(&mut self, t: TypeId) -> &mut TypeNode {
        self.note_mutation(crate::delta::SchemaDelta::TypeTouched(t));
        &mut self.types[t.index()]
    }
}

/// Re-export for ergonomic pattern matching on attribute definitions.
pub type Attribute = AttrDef;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ValueType;

    /// Builds the diamond  D <= B,C <= A.
    fn diamond() -> (Schema, TypeId, TypeId, TypeId, TypeId) {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let c = s.add_type("C", &[a]).unwrap();
        let d = s.add_type("D", &[b, c]).unwrap();
        (s, a, b, c, d)
    }

    #[test]
    fn subtype_is_reflexive_and_transitive() {
        let (s, a, b, _c, d) = diamond();
        assert!(s.is_subtype(a, a));
        assert!(s.is_subtype(d, a));
        assert!(s.is_subtype(b, a));
        assert!(!s.is_subtype(a, d));
        assert!(s.is_proper_subtype(d, a));
        assert!(!s.is_proper_subtype(a, a));
    }

    #[test]
    fn diamond_ancestors_dedup_shared_root() {
        let (s, a, b, c, d) = diamond();
        let anc = s.ancestors(d);
        assert_eq!(anc.len(), 3);
        assert!(anc.contains(&a) && anc.contains(&b) && anc.contains(&c));
        // BFS: direct supers first, in precedence order.
        assert_eq!(&anc[..2], &[b, c]);
    }

    #[test]
    fn cycle_rejected() {
        let (mut s, a, _b, _c, d) = diamond();
        let err = s.add_super_with_prec(a, d, 9).unwrap_err();
        assert!(matches!(err, ModelError::CycleIntroduced { .. }));
        let err = s.add_super_with_prec(a, a, 1).unwrap_err();
        assert!(matches!(err, ModelError::CycleIntroduced { .. }));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let (mut s, a, b, _c, _d) = diamond();
        let err = s.add_super_with_prec(b, a, 5).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateSuperEdge { .. }));
    }

    #[test]
    fn supers_sorted_by_precedence() {
        let mut s = Schema::new();
        let x = s.add_type("X", &[]).unwrap();
        let y = s.add_type("Y", &[]).unwrap();
        let z = s.add_type("Z", &[]).unwrap();
        let w = s.add_type("W", &[]).unwrap();
        s.add_super_with_prec(w, x, 2).unwrap();
        s.add_super_with_prec(w, y, 1).unwrap();
        s.add_super_with_prec(w, z, 3).unwrap();
        let order: Vec<_> = s.type_(w).super_ids().collect();
        assert_eq!(order, vec![y, x, z]);
    }

    #[test]
    fn add_super_highest_takes_front() {
        let (mut s, _a, b, _c, _d) = diamond();
        let hat = s.add_type("B_hat", &[]).unwrap();
        let prec = s.add_super_highest(b, hat).unwrap();
        assert_eq!(prec, 0);
        assert_eq!(s.type_(b).super_ids().next(), Some(hat));
        // A second surrogate goes even further front.
        let hat2 = s.add_type("B_hat2", &[]).unwrap();
        let prec2 = s.add_super_highest(b, hat2).unwrap();
        assert_eq!(prec2, -1);
        assert_eq!(s.type_(b).super_ids().next(), Some(hat2));
    }

    #[test]
    fn cumulative_attrs_inherited_once() {
        let (mut s, a, _b, _c, d) = diamond();
        let aa = s.add_attr("root_attr", ValueType::INT, a).unwrap();
        let da = s.add_attr("leaf_attr", ValueType::STR, d).unwrap();
        let cum = s.cumulative_attrs(d);
        assert_eq!(cum.len(), 2);
        assert!(cum.contains(&aa) && cum.contains(&da));
        assert!(s.attr_available_at(aa, d));
        assert!(!s.attr_available_at(da, a));
    }

    #[test]
    fn move_attr_preserves_identity() {
        let (mut s, a, b, _c, _d) = diamond();
        let aa = s.add_attr("x", ValueType::INT, a).unwrap();
        s.move_attr(aa, b).unwrap();
        assert_eq!(s.attr(aa).owner, b);
        assert!(s.type_(b).local_attrs.contains(&aa));
        assert!(!s.type_(a).local_attrs.contains(&aa));
        // Cumulative state of b unchanged; a lost the attribute.
        assert!(s.cumulative_attrs(b).contains(&aa));
        assert!(!s.cumulative_attrs(a).contains(&aa));
    }

    #[test]
    fn roots_and_descendants() {
        let (s, a, b, c, d) = diamond();
        assert_eq!(s.roots(), vec![a]);
        let mut desc = s.descendants(a);
        desc.sort();
        assert_eq!(desc, vec![b, c, d]);
        assert_eq!(s.direct_subtypes(a), vec![b, c]);
    }

    #[test]
    fn retire_type_requires_detachment() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        assert!(s.retire_type(a).is_err()); // b still points at a
        s.remove_super_edge(b, a);
        s.retire_type(a).unwrap();
        assert!(s.type_id("A").is_err());
        assert_eq!(s.roots(), vec![b]);
        // Name can be reused after retirement.
        let a2 = s.add_type("A", &[]).unwrap();
        assert_ne!(a2, a);
    }
}
