//! A precomputed subtype-reachability index.
//!
//! [`crate::Schema::is_subtype`] walks the DAG per query, which is right
//! for the mutation-heavy factorization algorithms. Read-heavy consumers
//! (bulk extent scans, repeated applicability sweeps, analysis tools)
//! can build a [`SubtypeIndex`] once — an ancestor bitset per type — and
//! answer queries in O(1).
//!
//! The index is a snapshot: it does **not** track later schema mutations.
//! [`SubtypeIndex::is_current`] cheaply detects growth (new types), but a
//! caller that mutates edges must rebuild.

use crate::ids::TypeId;
use crate::schema::Schema;

/// Immutable O(1) subtype oracle for a schema snapshot.
#[derive(Debug, Clone)]
pub struct SubtypeIndex {
    n: usize,
    words_per_row: usize,
    /// Row `t` = bitset of `t`'s ancestors, inclusive of `t`.
    bits: Vec<u64>,
}

impl SubtypeIndex {
    /// Builds the index from the current hierarchy (live types only;
    /// retired slots have empty rows).
    pub fn build(schema: &Schema) -> SubtypeIndex {
        let n = schema.n_types();
        let words_per_row = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words_per_row];

        // Process in topological order (supertypes before subtypes) so a
        // row is the union of its direct supers' completed rows. Id order
        // is not topological after factorization (surrogates get higher
        // ids yet sit at the top), so compute the order by DFS.
        let mut order: Vec<TypeId> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = new, 1 = open, 2 = done
        for root in schema.live_type_ids() {
            if state[root.index()] != 0 {
                continue;
            }
            let mut stack = vec![(root, false)];
            while let Some((t, finished)) = stack.pop() {
                if finished {
                    state[t.index()] = 2;
                    order.push(t);
                    continue;
                }
                if state[t.index()] != 0 {
                    continue;
                }
                state[t.index()] = 1;
                stack.push((t, true));
                for link in schema.type_(t).supers() {
                    if state[link.target.index()] == 0 {
                        stack.push((link.target, false));
                    }
                }
            }
        }

        for t in order {
            let ti = t.index();
            // Self bit.
            bits[ti * words_per_row + ti / 64] |= 1u64 << (ti % 64);
            let supers: Vec<TypeId> = schema.type_(t).super_ids().collect();
            for s in supers {
                // Row union: bits[t] |= bits[s].
                for w in 0..words_per_row {
                    let sv = bits[s.index() * words_per_row + w];
                    bits[ti * words_per_row + w] |= sv;
                }
            }
        }

        SubtypeIndex {
            n,
            words_per_row,
            bits,
        }
    }

    /// `a <= b` per the snapshot.
    #[inline]
    pub fn is_subtype(&self, a: TypeId, b: TypeId) -> bool {
        debug_assert!(a.index() < self.n && b.index() < self.n);
        let word = self.bits[a.index() * self.words_per_row + b.index() / 64];
        word & (1u64 << (b.index() % 64)) != 0
    }

    /// All ancestors of `t` (inclusive), in id order.
    pub fn ancestors_inclusive(&self, t: TypeId) -> Vec<TypeId> {
        let mut out = Vec::new();
        for w in 0..self.words_per_row {
            let mut word = self.bits[t.index() * self.words_per_row + w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push(TypeId::from_index(w * 64 + bit));
                word &= word - 1;
            }
        }
        out
    }

    /// True while the schema has not grown since the index was built
    /// (edge mutations are *not* detectable — rebuild after factorization).
    pub fn is_current(&self, schema: &Schema) -> bool {
        schema.n_types() == self.n
    }

    /// Number of type slots indexed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the indexed schema had no types.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ValueType;

    #[test]
    fn agrees_with_schema_on_diamond() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let c = s.add_type("C", &[a]).unwrap();
        let d = s.add_type("D", &[b, c]).unwrap();
        let idx = SubtypeIndex::build(&s);
        for x in [a, b, c, d] {
            for y in [a, b, c, d] {
                assert_eq!(idx.is_subtype(x, y), s.is_subtype(x, y), "{x} <= {y}");
            }
        }
        assert_eq!(idx.ancestors_inclusive(d), vec![a, b, c, d]);
        assert!(idx.is_current(&s));
        s.add_type("E", &[]).unwrap();
        assert!(!idx.is_current(&s));
    }

    #[test]
    fn surrogate_high_ids_handled() {
        // Surrogates get high ids but sit at the TOP of the hierarchy —
        // the topological build must handle supertypes with larger ids.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let hat = s.add_surrogate("^A", a).unwrap();
        s.add_super_highest(a, hat).unwrap();
        let idx = SubtypeIndex::build(&s);
        assert!(idx.is_subtype(b, hat));
        assert!(idx.is_subtype(a, hat));
        assert!(!idx.is_subtype(hat, a));
    }

    #[test]
    fn wide_schema_crosses_word_boundaries() {
        // >64 types to exercise multi-word rows.
        let mut s = Schema::new();
        let root = s.add_type("T0", &[]).unwrap();
        let mut prev = root;
        for i in 1..130 {
            prev = s.add_type(format!("T{i}"), &[prev]).unwrap();
        }
        let idx = SubtypeIndex::build(&s);
        let leaf = s.type_id("T129").unwrap();
        assert!(idx.is_subtype(leaf, root));
        assert!(!idx.is_subtype(root, leaf));
        assert_eq!(idx.ancestors_inclusive(leaf).len(), 130);
        let mid = s.type_id("T64").unwrap();
        assert!(idx.is_subtype(leaf, mid));
        assert!(idx.is_subtype(mid, root));
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new();
        let idx = SubtypeIndex::build(&s);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn agrees_with_schema_on_random_hierarchies() {
        // Structured pseudo-random DAG: type i inherits from up to three
        // of the previous types, chosen by a small LCG.
        let mut s = Schema::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut types = vec![s.add_type("T0", &[]).unwrap()];
        for i in 1..80 {
            let mut supers = Vec::new();
            let k = 1 + (state % 3) as usize;
            for _ in 0..k.min(types.len()) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let cand = types[(state >> 33) as usize % types.len()];
                if !supers.contains(&cand) {
                    supers.push(cand);
                }
            }
            types.push(s.add_type(format!("T{i}"), &supers).unwrap());
        }
        // One attribute so the schema is not degenerate.
        s.add_attr("x", ValueType::INT, types[0]).unwrap();
        let idx = SubtypeIndex::build(&s);
        for &x in &types {
            for &y in &types {
                assert_eq!(idx.is_subtype(x, y), s.is_subtype(x, y));
            }
        }
    }
}
