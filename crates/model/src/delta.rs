//! Structured schema deltas and by-name schema diffing.
//!
//! Two change-description layers live here, one per consumer:
//!
//! * [`SchemaDelta`] — the protocol between `Schema` mutators and the
//!   dispatch cache. Every `&mut self` path that can alter
//!   dispatch-relevant state emits one (via `Schema::note_mutation`)
//!   *instead of* blindly bumping a global generation. The cache records
//!   the deltas and, on the next read, closes them into a **dirty set**
//!   (see `crate::cache`): touched types are closed downward over the
//!   hierarchy (everything below a rewired node depends on it through
//!   its CPL), touched methods are closed over the condensation
//!   indexes' reverse call edges (an index whose universe contains the
//!   method, or whose source the method newly applies to, is stale).
//!   Only the reachable entries are evicted; everything else survives
//!   the mutation warm.
//!
//! * [`SchemaDiff`] / [`diff_schemas`] — compares two *independently
//!   built* schemas (e.g. two parses of successive registered texts) by
//!   **name**, since ids only have meaning within one schema. When the
//!   diff proves id-stability (`ids_stable`), warm cache entries whose
//!   dependency closure is untouched can be carried from the old schema
//!   into the new one (`Schema::carry_warm_from` in `crate::cache`) —
//!   the server registry uses this so re-registering an edited schema
//!   does not re-warm from scratch.

use crate::attrs::ValueType;
use crate::ids::{AttrId, GfId, MethodId, TypeId};
use crate::methods::Specializer;
use crate::schema::Schema;
use std::collections::HashMap;

/// One structured schema mutation, as emitted by every `&mut Schema`
/// mutation path. The variants bound the cache footprint of the change;
/// conservative over-approximation ([`SchemaDelta::Full`]) is always
/// sound, missing a mutation is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaDelta {
    /// A type was created. It has no supertype edges yet (wiring arrives
    /// as separate [`SchemaDelta::TypeTouched`] deltas) and nothing
    /// cached can reference it, so no eviction is needed.
    TypeAdded(TypeId),
    /// An attribute was defined. Attribute additions never change CPLs,
    /// dispatch tables or condensation indexes (footprints are bitsets
    /// over stable attribute ids, and a brand-new id cannot appear in
    /// any of them) — only lint reports are flushed.
    AttrAdded(AttrId),
    /// A generic function was declared. It has no methods yet, so no
    /// cached dispatch table or index universe can mention it.
    GfAdded(GfId),
    /// A method was attached to `gf`: `gf`'s dispatch tables are stale,
    /// and so is every condensation index whose source the method is
    /// applicable to.
    MethodAdded {
        /// The owning generic function.
        gf: GfId,
        /// The new method.
        method: MethodId,
    },
    /// An existing method was handed out `&mut` — its specializers or
    /// body may have been rewritten in place (`FactorMethods`,
    /// `Augment`, `unproject` all do this). Same footprint as
    /// [`SchemaDelta::MethodAdded`], plus any index whose universe
    /// already contained the method.
    MethodTouched {
        /// The owning generic function.
        gf: GfId,
        /// The touched method.
        method: MethodId,
    },
    /// An existing attribute definition was handed out `&mut`
    /// (ownership moves during state factorization). Attribute
    /// definitions feed projection compatibility and lint — computed
    /// fresh per request — but no generation-cached structure, so only
    /// lint reports are flushed. Hierarchy-side effects of a move are
    /// reported separately as [`SchemaDelta::TypeTouched`] by
    /// `move_attr` itself.
    AttrTouched(AttrId),
    /// A type node was handed out `&mut`: its supertype edges, local
    /// attribute list, origin or liveness may have changed. Dirties the
    /// node and (at refresh time) its transitive subtypes — every
    /// cached artifact below it depends on the node through its
    /// ancestor chain.
    TypeTouched(TypeId),
    /// A mutation whose cache footprint cannot be bounded (raw access
    /// to the type table). Flushes everything — the pre-delta behavior.
    Full,
}

/// A by-name comparison of two independently built schemas (old → new).
///
/// Entity names are globally unique per kind, so names are the only
/// cross-schema identity. `ids_stable` additionally certifies that every
/// surviving entity occupies the *same id slot* in both schemas — the
/// precondition for carrying warm id-keyed cache entries across.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaDiff {
    /// Type names present only in the new schema.
    pub added_types: Vec<String>,
    /// Type names present only in the old schema.
    pub removed_types: Vec<String>,
    /// Types whose supertype edges, origin or local attribute list
    /// differ between the schemas.
    pub changed_types: Vec<String>,
    /// Attribute names present only in the new schema.
    pub added_attrs: Vec<String>,
    /// Attribute names present only in the old schema.
    pub removed_attrs: Vec<String>,
    /// Attributes whose value type or owner differ.
    pub changed_attrs: Vec<String>,
    /// Generic-function names present only in the new schema.
    pub added_gfs: Vec<String>,
    /// Generic-function names present only in the old schema.
    pub removed_gfs: Vec<String>,
    /// Generic functions whose arity or result contract differ.
    pub changed_gfs: Vec<String>,
    /// Method labels present only in the new schema.
    pub added_methods: Vec<String>,
    /// Method labels present only in the old schema.
    pub removed_methods: Vec<String>,
    /// Methods whose signature (or, when ids are stable, body) differ.
    pub changed_methods: Vec<String>,
    /// True iff every entity surviving from old to new keeps its exact
    /// id slot (same `TypeId`/`AttrId`/`GfId`/`MethodId` for the same
    /// name). Holds for append-only and edit-in-place evolutions; any
    /// removal or reordering clears it and disables warm-entry carry.
    pub ids_stable: bool,
}

impl SchemaDiff {
    /// True iff the two schemas are observably identical.
    pub fn is_empty(&self) -> bool {
        self.added_types.is_empty()
            && self.removed_types.is_empty()
            && self.changed_types.is_empty()
            && self.added_attrs.is_empty()
            && self.removed_attrs.is_empty()
            && self.changed_attrs.is_empty()
            && self.added_gfs.is_empty()
            && self.removed_gfs.is_empty()
            && self.changed_gfs.is_empty()
            && self.added_methods.is_empty()
            && self.removed_methods.is_empty()
            && self.changed_methods.is_empty()
    }

    /// A compact `+a/-r/~c` summary per entity kind, e.g.
    /// `types +1 ~2; methods +1` — used by server logs and the watch
    /// change feed.
    pub fn summary(&self) -> String {
        fn part(out: &mut Vec<String>, kind: &str, a: &[String], r: &[String], c: &[String]) {
            if a.is_empty() && r.is_empty() && c.is_empty() {
                return;
            }
            let mut s = String::from(kind);
            for (sign, list) in [("+", a), ("-", r), ("~", c)] {
                if !list.is_empty() {
                    s.push_str(&format!(" {sign}{}", list.len()));
                }
            }
            out.push(s);
        }
        let mut parts = Vec::new();
        part(
            &mut parts,
            "types",
            &self.added_types,
            &self.removed_types,
            &self.changed_types,
        );
        part(
            &mut parts,
            "attrs",
            &self.added_attrs,
            &self.removed_attrs,
            &self.changed_attrs,
        );
        part(
            &mut parts,
            "gfs",
            &self.added_gfs,
            &self.removed_gfs,
            &self.changed_gfs,
        );
        part(
            &mut parts,
            "methods",
            &self.added_methods,
            &self.removed_methods,
            &self.changed_methods,
        );
        if parts.is_empty() {
            "no changes".to_string()
        } else {
            parts.join("; ")
        }
    }
}

/// Renders a value type by name, so types from different schemas compare.
fn value_type_key(schema: &Schema, ty: ValueType) -> String {
    match ty {
        ValueType::Prim(p) => format!("prim:{p:?}"),
        ValueType::Object(t) => format!("obj:{}", schema.type_name(t)),
    }
}

/// Renders a specializer by name.
fn spec_key(schema: &Schema, s: Specializer) -> String {
    match s {
        Specializer::Type(t) => format!("type:{}", schema.type_name(t)),
        Specializer::Prim(p) => format!("prim:{p:?}"),
    }
}

/// Renders the name-level signature of a type node: supertype edges with
/// precedences, origin, and the local attribute list.
fn type_key(schema: &Schema, t: TypeId) -> String {
    let node = schema.type_(t);
    let supers: Vec<String> = node
        .supers()
        .iter()
        .map(|l| format!("{}@{}", schema.type_name(l.target), l.prec))
        .collect();
    let origin = match node.surrogate_source() {
        Some(src) => format!("surrogate:{}", schema.type_name(src)),
        None => "original".to_string(),
    };
    let attrs: Vec<&str> = node
        .local_attrs
        .iter()
        .map(|&a| schema.attr_name(a))
        .collect();
    format!("[{}] {} {{{}}}", supers.join(","), origin, attrs.join(","))
}

/// Renders the name-level signature of a method (gf, specializers, kind
/// discriminant with accessed attribute, result).
fn method_key(schema: &Schema, m: MethodId) -> String {
    let method = schema.method(m);
    let specs: Vec<String> = method
        .specializers
        .iter()
        .map(|&s| spec_key(schema, s))
        .collect();
    let kind = match method.kind.accessed_attr() {
        Some(a) => format!("accessor:{}", schema.attr_name(a)),
        None => "general".to_string(),
    };
    let result = method
        .result
        .map(|r| value_type_key(schema, r))
        .unwrap_or_default();
    format!(
        "{}({}) {} -> {}",
        schema.gf_name(method.gf),
        specs.join(","),
        kind,
        result
    )
}

/// Compares two independently built schemas by name. See [`SchemaDiff`].
pub fn diff_schemas(old: &Schema, new: &Schema) -> SchemaDiff {
    let mut diff = SchemaDiff::default();

    // -- id stability: every old entity's name resolves to the same id
    // slot in the new schema. Checked first because the changed-entity
    // comparison below can use id-based structural equality when it
    // holds (methods' bodies reference ids, which are only comparable
    // across schemas under stability).
    let mut ids_stable = true;
    for t in old.live_type_ids() {
        if new.type_id(old.type_name(t)) != Ok(t) {
            ids_stable = false;
            break;
        }
    }
    ids_stable = ids_stable
        && old
            .attr_ids()
            .all(|a| new.attr_id(old.attr_name(a)) == Ok(a))
        && old.gf_ids().all(|g| new.gf_id(old.gf_name(g)) == Ok(g))
        && old.method_ids().all(|m| {
            m.index() < new.n_methods()
                && new.method_label(m) == old.method_label(m)
                && new.gf_name(new.method(m).gf) == old.gf_name(old.method(m).gf)
        });
    diff.ids_stable = ids_stable;

    // -- types
    let new_types: HashMap<&str, TypeId> =
        new.live_type_ids().map(|t| (new.type_name(t), t)).collect();
    let old_types: HashMap<&str, TypeId> =
        old.live_type_ids().map(|t| (old.type_name(t), t)).collect();
    for t in old.live_type_ids() {
        let name = old.type_name(t);
        match new_types.get(name) {
            None => diff.removed_types.push(name.to_string()),
            Some(&nt) => {
                if type_key(old, t) != type_key(new, nt) {
                    diff.changed_types.push(name.to_string());
                }
            }
        }
    }
    for t in new.live_type_ids() {
        let name = new.type_name(t);
        if !old_types.contains_key(name) {
            diff.added_types.push(name.to_string());
        }
    }

    // -- attributes
    let new_attrs: HashMap<&str, AttrId> = new.attr_ids().map(|a| (new.attr_name(a), a)).collect();
    let old_attrs: HashMap<&str, AttrId> = old.attr_ids().map(|a| (old.attr_name(a), a)).collect();
    for a in old.attr_ids() {
        let name = old.attr_name(a);
        match new_attrs.get(name) {
            None => diff.removed_attrs.push(name.to_string()),
            Some(&na) => {
                let old_def = old.attr(a);
                let new_def = new.attr(na);
                if value_type_key(old, old_def.ty) != value_type_key(new, new_def.ty)
                    || old.type_name(old_def.owner) != new.type_name(new_def.owner)
                {
                    diff.changed_attrs.push(name.to_string());
                }
            }
        }
    }
    for a in new.attr_ids() {
        let name = new.attr_name(a);
        if !old_attrs.contains_key(name) {
            diff.added_attrs.push(name.to_string());
        }
    }

    // -- generic functions
    let new_gfs: HashMap<&str, GfId> = new.gf_ids().map(|g| (new.gf_name(g), g)).collect();
    let old_gfs: HashMap<&str, GfId> = old.gf_ids().map(|g| (old.gf_name(g), g)).collect();
    for g in old.gf_ids() {
        let name = old.gf_name(g);
        match new_gfs.get(name) {
            None => diff.removed_gfs.push(name.to_string()),
            Some(&ng) => {
                let (o, n) = (old.gf(g), new.gf(ng));
                if o.arity != n.arity
                    || o.result.map(|r| value_type_key(old, r))
                        != n.result.map(|r| value_type_key(new, r))
                {
                    diff.changed_gfs.push(name.to_string());
                }
            }
        }
    }
    for g in new.gf_ids() {
        let name = new.gf_name(g);
        if !old_gfs.contains_key(name) {
            diff.added_gfs.push(name.to_string());
        }
    }

    // -- methods (by label; labels are globally unique in practice — the
    // parser and every generator mint one label per method)
    let new_methods: HashMap<&str, MethodId> =
        new.method_ids().map(|m| (new.method_label(m), m)).collect();
    let old_methods: HashMap<&str, MethodId> =
        old.method_ids().map(|m| (old.method_label(m), m)).collect();
    for m in old.method_ids() {
        let label = old.method_label(m);
        match new_methods.get(label) {
            None => diff.removed_methods.push(label.to_string()),
            Some(&nm) => {
                // Name-level signature always compares; bodies compare
                // through their rendered text (ids and interned names are
                // schema-relative, so struct equality would flag every
                // method whose name table shifted).
                let sig_changed = method_key(old, m) != method_key(new, nm);
                let body_changed = crate::text::method_content_text(old, m)
                    != crate::text::method_content_text(new, nm);
                if sig_changed || body_changed {
                    diff.changed_methods.push(label.to_string());
                }
            }
        }
    }
    for m in new.method_ids() {
        let label = new.method_label(m);
        if !old_methods.contains_key(label) {
            diff.added_methods.push(label.to_string());
        }
    }
    diff
}

/// What [`Schema::carry_warm_from`](crate::Schema::carry_warm_from)
/// managed to carry across a schema replacement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CarryReport {
    /// CPL and rank-table entries carried.
    pub cpl: usize,
    /// Dispatch-table (applicable + ranked) entries carried.
    pub dispatch: usize,
    /// Applicability condensation indexes carried.
    pub indexes: usize,
}

impl CarryReport {
    /// Total entries carried.
    pub fn total(&self) -> usize {
        self.cpl + self.dispatch + self.indexes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_schema;

    const BASE: &str = "type A { x: int  y: int }\ntype B : A { z: int }\n";

    #[test]
    fn identical_schemas_diff_empty_and_stable() {
        let a = parse_schema(BASE).unwrap();
        let b = parse_schema(BASE).unwrap();
        let d = diff_schemas(&a, &b);
        assert!(d.is_empty(), "{d:?}");
        assert!(d.ids_stable);
        assert_eq!(d.summary(), "no changes");
    }

    #[test]
    fn appended_type_keeps_ids_stable() {
        let a = parse_schema(BASE).unwrap();
        let b = parse_schema(&format!("{BASE}type C : B {{ w: int }}\n")).unwrap();
        let d = diff_schemas(&a, &b);
        assert!(d.ids_stable, "append-only evolution keeps old id slots");
        assert_eq!(d.added_types, vec!["C"]);
        assert_eq!(d.added_attrs, vec!["w"]);
        assert!(d.removed_types.is_empty() && d.changed_types.is_empty());
        assert!(d.summary().contains("types +1"), "{}", d.summary());
    }

    #[test]
    fn removed_type_breaks_id_stability() {
        let a = parse_schema(BASE).unwrap();
        let b = parse_schema("type A { x: int  y: int }\n").unwrap();
        let d = diff_schemas(&a, &b);
        assert!(!d.ids_stable);
        assert_eq!(d.removed_types, vec!["B"]);
        assert_eq!(d.removed_attrs, vec!["z"]);
    }

    #[test]
    fn rewired_edge_is_a_changed_type() {
        let a = parse_schema(BASE).unwrap();
        let b = parse_schema("type A { x: int  y: int }\ntype B { z: int }\n").unwrap();
        let d = diff_schemas(&a, &b);
        assert_eq!(d.changed_types, vec!["B"], "B lost its supertype edge");
        assert!(d.ids_stable, "in-place edits keep id slots");
    }

    #[test]
    fn retyped_attr_is_changed() {
        let a = parse_schema(BASE).unwrap();
        let b = parse_schema("type A { x: int  y: str }\ntype B : A { z: int }\n").unwrap();
        let d = diff_schemas(&a, &b);
        assert_eq!(d.changed_attrs, vec!["y"]);
        assert!(d.changed_types.is_empty(), "type shape is unchanged");
    }
}
