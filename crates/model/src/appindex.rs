//! The applicability condensation index: amortized O(V+E) `IsApplicable`.
//!
//! The pass-based `IsApplicable` engine in `td-core` re-walks the method
//! call graph from scratch for **every** projection over a source type,
//! with `O(passes × methods)` worst-case behavior. But the call graph
//! itself depends only on `(schema, source)` — the projection list enters
//! the computation *only* at the accessor leaves. This module precomputes
//! everything projection-independent once per schema generation:
//!
//! 1. the **call graph** over the universe (every method applicable to the
//!    source type), with one edge per §4.1 candidate of every
//!    source-relevant call site;
//! 2. its **Tarjan SCC condensation**, computed iteratively (an explicit
//!    frame stack, so 500-deep call chains cannot overflow the thread
//!    stack), whose emission order is reverse topological;
//! 3. per-SCC **attribute footprints** — dense [`AttrBitSet`]s holding
//!    every accessor attribute transitively reachable from the SCC —
//!    propagated bottom-up in a single O(V+E) pass, together with a
//!    `dead` bit (some reachable site has no candidate at all) and a
//!    `fallback` bit (see below).
//!
//! A projection query then classifies a method with one subset test:
//! applicable iff nothing reachable is dead and `footprint ⊆ projection`.
//!
//! ## The fallback seam
//!
//! The subset test is exact only for the *conjunctive* fragment of the
//! call graph: call sites with exactly one candidate are AND-edges, and
//! the greatest fixpoint over an AND-graph is reachability of failures.
//! Two features of §4.1 break pure conjunction:
//!
//! * a site with **several candidates** survives if *any* candidate does
//!   (disjunction — a footprint union would over-approximate the
//!   requirement);
//! * a site hitting the **case-2 multi-source rule** (two or more
//!   source-relevant argument positions) takes the call as written, and
//!   its verdict interacts with the same OR-structure.
//!
//! Methods whose reachable region contains either feature get the
//! `fallback` bit (the bit propagates caller-ward through the
//! condensation, because a caller's verdict depends on its callees').
//! [`ApplicabilityIndex::verdict`] returns `None` for them and the caller
//! (in `td-core`) re-runs the pass-based engine for exactly that residue,
//! seeded with the indexed verdicts — so results are identical by
//! construction, and the common all-AND case never enters the pass loop.
//!
//! The index is cached inside [`Schema`] behind the same generation
//! counter as the dispatch tables (see [`crate::cache`]), so a schema
//! clone — in particular every [`crate::SchemaSnapshot`] fork handed to a
//! batch worker — carries the warm index for free.

use crate::dispatch::CallArg;
use crate::error::Result;
use crate::ids::{AttrId, MethodId, TypeId};
use crate::schema::Schema;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// How the index computes attribute footprints and classifies call sites.
///
/// `Syntactic` is the PR-3 construction: any disjunctive or case-2 call
/// site conservatively marks its whole reachable region `fallback`.
/// `Semantic` runs the abstract-interpretation refinement on top: using a
/// finished lower-precision index, a multi-candidate site whose live
/// candidates have a ⊆-minimum footprint collapses to one conjunctive
/// edge, dead candidates drop out, and single-candidate case-2 sites
/// become plain edges — all verdict-preserving (see
/// [`ApplicabilityIndex::build_with`]), so the three `IsApplicable`
/// engines classify identically at either precision while `Semantic`
/// demotes fallback methods to the indexed fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AnalysisPrecision {
    /// Call-graph construction only; disjunctive sites defer to the
    /// pass-based engine.
    #[default]
    Syntactic,
    /// Iterated footprint refinement over the syntactic index; strictly
    /// fewer fallback methods, identical verdicts.
    Semantic,
}

impl AnalysisPrecision {
    /// Stable lowercase name (`"syntactic"` / `"semantic"`), used by the
    /// CLI `--precision` flag and the server `precision` field.
    pub fn as_str(self) -> &'static str {
        match self {
            AnalysisPrecision::Syntactic => "syntactic",
            AnalysisPrecision::Semantic => "semantic",
        }
    }
}

impl fmt::Display for AnalysisPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for AnalysisPrecision {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "syntactic" => Ok(AnalysisPrecision::Syntactic),
            "semantic" => Ok(AnalysisPrecision::Semantic),
            other => Err(format!(
                "unknown precision `{other}` (expected `syntactic` or `semantic`)"
            )),
        }
    }
}

/// What the semantic refinement decided for one call site, consulting the
/// previous (finished) index round.
enum SiteRefinement {
    /// The disjunction collapsed to a single conjunctive edge.
    Edge(MethodId),
    /// Every candidate is provably dead: the site is unsatisfiable.
    Dead,
    /// The candidates are incomparable or still undecided; keep the
    /// syntactic fallback treatment.
    Fallback,
}

/// A dense attribute bitset keyed by [`AttrId`] arena index.
///
/// One bit per attribute slot of the schema the set was sized for;
/// operations between sets sized for the same schema are word-parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrBitSet {
    words: Vec<u64>,
}

impl AttrBitSet {
    /// An empty set sized for a schema with `n_attrs` attribute slots.
    pub fn new(n_attrs: usize) -> AttrBitSet {
        AttrBitSet {
            words: vec![0u64; n_attrs.div_ceil(64).max(1)],
        }
    }

    /// Inserts an attribute (growing the set if the id is beyond the
    /// sized capacity, so stale sizing degrades to allocation, not loss).
    pub fn insert(&mut self, a: AttrId) {
        let w = a.index() / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (a.index() % 64);
    }

    /// True iff the attribute is in the set.
    pub fn contains(&self, a: AttrId) -> bool {
        self.words
            .get(a.index() / 64)
            .is_some_and(|w| w & (1u64 << (a.index() % 64)) != 0)
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &AttrBitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (dst, &src) in self.words.iter_mut().zip(other.words.iter()) {
            *dst |= src;
        }
    }

    /// True iff every attribute of `self` is in `other`.
    pub fn is_subset(&self, other: &AttrBitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates the members in id order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(AttrId::from_index(wi * 64 + bit))
            })
        })
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// The per-`(schema generation, source type)` applicability index.
///
/// Built once by [`Schema::cached_applicability_index`] and shared via
/// `Arc`; answers most [`verdict`](ApplicabilityIndex::verdict) queries
/// with a bitset subset test. See the module docs for the construction
/// and the exactness argument.
#[derive(Debug, Clone)]
pub struct ApplicabilityIndex {
    pub(crate) source: TypeId,
    pub(crate) n_attrs: usize,
    /// The precision the index was built at (see [`AnalysisPrecision`]).
    pub(crate) precision: AnalysisPrecision,
    /// The universe (methods applicable to `source`), in method-id order;
    /// node `i` of the call graph is `methods[i]`.
    pub(crate) methods: Vec<MethodId>,
    pub(crate) node_of: HashMap<MethodId, usize>,
    /// Adjacency of the (possibly refined) call graph, per node — one
    /// entry per retained §4.1 candidate edge. Exposed to `td-analyze`'s
    /// monotone framework through [`callees`](ApplicabilityIndex::callees).
    pub(crate) edges: Vec<Vec<usize>>,
    /// Node → SCC id, in Tarjan emission (= reverse topological) order.
    pub(crate) scc_of: Vec<usize>,
    /// Per-SCC union of transitively reachable accessor attributes.
    pub(crate) scc_footprint: Vec<AttrBitSet>,
    /// Per-SCC: some reachable call site has no candidate at all.
    pub(crate) scc_dead: Vec<bool>,
    /// Per-SCC: some reachable site is disjunctive or case-2 — the subset
    /// test is not exact and the caller must use the pass-based engine.
    pub(crate) scc_fallback: Vec<bool>,
    /// Per-SCC node membership, in emission order (matches `scc_of` ids).
    pub(crate) scc_members: Vec<Vec<usize>>,
    /// Per-SCC: the component contains an internal call edge — a genuine
    /// call ring (size > 1, or a self-recursive method). Verdicts inside
    /// such components rest on the §4 optimistic assumption.
    pub(crate) scc_cyclic: Vec<bool>,
    /// Number of universe methods whose verdict needs the fallback.
    pub(crate) fallback_methods: usize,
    /// Lazily-memoized call rings (see
    /// [`cycle_groups`](ApplicabilityIndex::cycle_groups)): the groups
    /// are a pure function of the condensation, and consumers (TDL003,
    /// `tdv explain`'s ring notes) ask per *diagnostic*, so they are
    /// derived at most once per index instance.
    pub(crate) cycle_rings: OnceLock<Vec<Vec<MethodId>>>,
}

impl ApplicabilityIndex {
    /// Builds the index for projections over `source`: call-graph
    /// construction, iterative Tarjan condensation, and one bottom-up
    /// footprint/dead/fallback propagation pass (syntactic precision).
    pub fn build(schema: &Schema, source: TypeId) -> Result<ApplicabilityIndex> {
        Self::build_pass(schema, source, None)
    }

    /// Builds the index at the requested precision.
    ///
    /// `Semantic` iterates the refinement to a fixpoint: each round
    /// rebuilds the graph consulting the previous round's finished
    /// footprints, and stops when the fallback count no longer shrinks
    /// (it shrinks monotonically — refinement only removes fallback
    /// causes, never adds them — so the loop is bounded by the universe
    /// size).
    ///
    /// **Verdict preservation.** At a multi-candidate site the §4.1
    /// engine succeeds iff *some* candidate is applicable. For a
    /// non-fallback candidate `c` of the previous round,
    /// `applicable(c, P) ⟺ ¬dead(c) ∧ fp(c) ⊆ P` exactly. Dropping dead
    /// candidates preserves the disjunction; and when a live candidate
    /// `c_min` satisfies `fp(c_min) ⊆ fp(c)` for every live `c`, then
    /// `∃c: fp(c) ⊆ P ⟺ fp(c_min) ⊆ P`, so one conjunctive edge to
    /// `c_min` encodes the site. Sites with undecided (fallback)
    /// candidates or incomparable footprints keep the fallback seam, so
    /// every answered verdict stays exact.
    pub fn build_with(
        schema: &Schema,
        source: TypeId,
        precision: AnalysisPrecision,
    ) -> Result<ApplicabilityIndex> {
        let mut idx = Self::build_pass(schema, source, None)?;
        if precision == AnalysisPrecision::Semantic {
            loop {
                let refined = Self::build_pass(schema, source, Some(&idx))?;
                if refined.fallback_methods < idx.fallback_methods {
                    idx = refined;
                } else {
                    break;
                }
            }
            idx.precision = AnalysisPrecision::Semantic;
        }
        Ok(idx)
    }

    /// Classifies one multi-candidate (or case-2) site against the
    /// previous round's index. See [`build_with`](Self::build_with) for
    /// the exactness argument.
    fn refine_site(prev: &ApplicabilityIndex, candidates: &[MethodId]) -> SiteRefinement {
        let mut live: Vec<usize> = Vec::with_capacity(candidates.len());
        for c in candidates {
            let Some(&j) = prev.node_of.get(c) else {
                return SiteRefinement::Fallback;
            };
            let sid = prev.scc_of[j];
            if prev.scc_fallback[sid] {
                return SiteRefinement::Fallback;
            }
            if prev.scc_dead[sid] {
                continue;
            }
            live.push(j);
        }
        match live[..] {
            [] => SiteRefinement::Dead,
            [only] => SiteRefinement::Edge(prev.methods[only]),
            _ => {
                'candidates: for &c in &live {
                    let fp = &prev.scc_footprint[prev.scc_of[c]];
                    for &d in &live {
                        if !fp.is_subset(&prev.scc_footprint[prev.scc_of[d]]) {
                            continue 'candidates;
                        }
                    }
                    return SiteRefinement::Edge(prev.methods[c]);
                }
                SiteRefinement::Fallback
            }
        }
    }

    /// One construction round: the PR-3 syntactic build when `refine` is
    /// `None`, otherwise the semantic refinement consulting the finished
    /// previous round.
    fn build_pass(
        schema: &Schema,
        source: TypeId,
        refine: Option<&ApplicabilityIndex>,
    ) -> Result<ApplicabilityIndex> {
        let methods = schema.methods_applicable_to_type(source);
        let n = methods.len();
        let node_of: HashMap<MethodId, usize> =
            methods.iter().enumerate().map(|(i, &m)| (m, i)).collect();

        // ---- call-graph construction ------------------------------------
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut local_attr: Vec<Option<AttrId>> = vec![None; n];
        let mut local_dead = vec![false; n];
        let mut local_fallback = vec![false; n];
        let mut scratch: Vec<CallArg> = Vec::new();
        for (i, &m) in methods.iter().enumerate() {
            if let Some(attr) = schema.method(m).kind.accessed_attr() {
                local_attr[i] = Some(attr);
                continue;
            }
            for site in schema.call_sites(m, source)? {
                if site.source_positions.is_empty() {
                    continue;
                }
                let (candidates, _) = schema.site_candidates(source, &site, &mut scratch);
                if candidates.is_empty() {
                    // An unsatisfiable call: the method dies under every
                    // projection. Reachability propagates the bit upward.
                    local_dead[i] = true;
                    continue;
                }
                if site.source_positions.len() > 1 || candidates.len() > 1 {
                    if let Some(prev) = refine {
                        match Self::refine_site(prev, &candidates) {
                            SiteRefinement::Edge(c) => {
                                // The disjunction collapsed: one exact
                                // conjunctive edge replaces the fallback.
                                if let Some(&j) = node_of.get(&c) {
                                    if !edges[i].contains(&j) {
                                        edges[i].push(j);
                                    }
                                } else {
                                    local_fallback[i] = true;
                                }
                                continue;
                            }
                            SiteRefinement::Dead => {
                                local_dead[i] = true;
                                continue;
                            }
                            SiteRefinement::Fallback => {}
                        }
                    }
                    local_fallback[i] = true;
                }
                for c in candidates {
                    match node_of.get(&c) {
                        Some(&j) => {
                            if !edges[i].contains(&j) {
                                edges[i].push(j);
                            }
                        }
                        // Candidates of source-relevant sites are always
                        // applicable to the source type (the substituted
                        // position subsumes it), so this arm is
                        // unreachable — but if the model ever relaxes
                        // that, degrade to the exact engine rather than
                        // guess.
                        None => local_fallback[i] = true,
                    }
                }
            }
        }

        // ---- iterative Tarjan SCC condensation --------------------------
        const UNVISITED: usize = usize::MAX;
        let mut disc = vec![UNVISITED; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut tarjan_stack: Vec<usize> = Vec::new();
        let mut scc_of = vec![UNVISITED; n];
        let mut scc_members: Vec<Vec<usize>> = Vec::new();
        let mut next_disc = 0usize;
        // Explicit DFS frames `(node, next edge offset)` — recursion depth
        // equals call-chain depth, which the workloads push to 500+.
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if disc[root] != UNVISITED {
                continue;
            }
            disc[root] = next_disc;
            low[root] = next_disc;
            next_disc += 1;
            tarjan_stack.push(root);
            on_stack[root] = true;
            frames.push((root, 0));
            while let Some(&(v, ep)) = frames.last() {
                if let Some(&w) = edges[v].get(ep) {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if disc[w] == UNVISITED {
                        disc[w] = next_disc;
                        low[w] = next_disc;
                        next_disc += 1;
                        tarjan_stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(disc[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (p, _)) = frames.last_mut() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == disc[v] {
                        let sid = scc_members.len();
                        let mut members = Vec::new();
                        loop {
                            let w = tarjan_stack.pop().expect("SCC stack holds v");
                            on_stack[w] = false;
                            scc_of[w] = sid;
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc_members.push(members);
                    }
                }
            }
        }

        // ---- bottom-up propagation in emission order --------------------
        // Tarjan pops an SCC only after every SCC it can reach was popped,
        // so emission order is reverse topological: every cross edge from
        // SCC `sid` targets an SCC with a smaller id, already finalized.
        let n_attrs = schema.n_attrs();
        let n_sccs = scc_members.len();
        let mut scc_footprint: Vec<AttrBitSet> = Vec::with_capacity(n_sccs);
        let mut scc_dead = vec![false; n_sccs];
        let mut scc_fallback = vec![false; n_sccs];
        for (sid, members) in scc_members.iter().enumerate() {
            let mut fp = AttrBitSet::new(n_attrs);
            for &v in members {
                if let Some(a) = local_attr[v] {
                    fp.insert(a);
                }
                scc_dead[sid] |= local_dead[v];
                scc_fallback[sid] |= local_fallback[v];
                for &w in &edges[v] {
                    let ws = scc_of[w];
                    if ws == sid {
                        continue;
                    }
                    debug_assert!(ws < sid, "emission order must be reverse topological");
                    fp.union_with(&scc_footprint[ws]);
                    scc_dead[sid] |= scc_dead[ws];
                    scc_fallback[sid] |= scc_fallback[ws];
                }
            }
            scc_footprint.push(fp);
        }

        let fallback_methods = (0..n).filter(|&i| scc_fallback[scc_of[i]]).count();
        // An SCC is a call ring iff it has an internal edge: components of
        // size > 1 always do (strong connectivity), and singletons only
        // when the method calls itself.
        let mut scc_cyclic = vec![false; n_sccs];
        for (v, out) in edges.iter().enumerate() {
            for &w in out {
                if scc_of[w] == scc_of[v] {
                    scc_cyclic[scc_of[v]] = true;
                }
            }
        }
        Ok(ApplicabilityIndex {
            source,
            n_attrs,
            precision: AnalysisPrecision::Syntactic,
            methods,
            node_of,
            edges,
            scc_of,
            scc_footprint,
            scc_dead,
            scc_fallback,
            scc_members,
            scc_cyclic,
            fallback_methods,
            cycle_rings: OnceLock::new(),
        })
    }

    /// The source type the index was built for.
    pub fn source(&self) -> TypeId {
        self.source
    }

    /// The universe the index classifies (methods applicable to the
    /// source type), in method-id order.
    pub fn universe(&self) -> &[MethodId] {
        &self.methods
    }

    /// Number of strongly connected components in the condensation.
    pub fn n_sccs(&self) -> usize {
        self.scc_footprint.len()
    }

    /// Number of universe methods whose verdict requires the pass-based
    /// fallback (disjunctive or case-2 structure in their reachable
    /// region).
    pub fn fallback_methods(&self) -> usize {
        self.fallback_methods
    }

    /// True when every universe method is decided by the subset test.
    pub fn is_fully_indexed(&self) -> bool {
        self.fallback_methods == 0
    }

    /// The precision this index was built at.
    pub fn precision(&self) -> AnalysisPrecision {
        self.precision
    }

    /// The retained call-graph successors of a universe method (one per
    /// kept §4.1 candidate edge), or `None` for methods outside the
    /// universe. This is the graph `td-analyze`'s monotone framework
    /// iterates over.
    pub fn callees(&self, m: MethodId) -> Option<impl Iterator<Item = MethodId> + '_> {
        let &i = self.node_of.get(&m)?;
        Some(self.edges[i].iter().map(move |&j| self.methods[j]))
    }

    /// The SCC id of a universe method (ids are in Tarjan emission =
    /// reverse topological order: every cross edge targets a smaller id).
    pub fn scc_id(&self, m: MethodId) -> Option<usize> {
        self.node_of.get(&m).map(|&i| self.scc_of[i])
    }

    /// The universe methods of one SCC, in node order.
    pub fn scc_methods(&self, sid: usize) -> impl Iterator<Item = MethodId> + '_ {
        self.scc_members[sid].iter().map(move |&v| self.methods[v])
    }

    /// True iff the SCC is a genuine call ring (internal edge).
    pub fn scc_is_cyclic(&self, sid: usize) -> bool {
        self.scc_cyclic[sid]
    }

    /// True iff some call site reachable from the SCC has no candidate.
    pub fn scc_is_dead(&self, sid: usize) -> bool {
        self.scc_dead[sid]
    }

    /// True iff the SCC's verdicts need the pass-based fallback.
    pub fn scc_is_fallback(&self, sid: usize) -> bool {
        self.scc_fallback[sid]
    }

    /// The footprint bitset of one SCC.
    pub fn scc_footprint_bits(&self, sid: usize) -> &AttrBitSet {
        &self.scc_footprint[sid]
    }

    /// Converts a projection list into the index's bitset representation,
    /// sized to be word-compatible with the stored footprints.
    pub fn projection_bits(&self, projection: &BTreeSet<AttrId>) -> AttrBitSet {
        let mut bits = AttrBitSet::new(self.n_attrs);
        for &a in projection {
            bits.insert(a);
        }
        bits
    }

    /// The transitive attribute footprint of a universe method (every
    /// accessor attribute reachable through its §4.1 candidate edges), or
    /// `None` for methods outside the universe. Exact only for
    /// non-fallback methods — fallback regions contain disjunctions the
    /// union over-approximates.
    pub fn footprint(&self, m: MethodId) -> Option<&AttrBitSet> {
        let &i = self.node_of.get(&m)?;
        Some(&self.scc_footprint[self.scc_of[i]])
    }

    /// True when `m`'s applicability verdict for this source rests on the
    /// §4 optimistic cycle assumption: the method sits on a call ring
    /// (nontrivial SCC, or self-recursion) of the condensed call graph.
    pub fn in_cycle(&self, m: MethodId) -> bool {
        match self.node_of.get(&m) {
            Some(&i) => self.scc_cyclic[self.scc_of[i]],
            None => false,
        }
    }

    /// The call rings of the condensed graph: one group per SCC with an
    /// internal edge, members sorted by method id, groups ordered by their
    /// smallest member. These are exactly the regions where §4's
    /// `IsApplicable` assumes methods applicable before checking them.
    ///
    /// Derived lazily and memoized on the index, so ring consumers that
    /// ask once per diagnostic (TDL003, explain's ring notes) pay the
    /// group construction once per `(schema generation, source)` — the
    /// index itself is already cached at that granularity.
    pub fn cycle_groups(&self) -> &[Vec<MethodId>] {
        self.cycle_rings.get_or_init(|| {
            let mut groups: Vec<Vec<MethodId>> = self
                .scc_members
                .iter()
                .enumerate()
                .filter(|&(sid, _)| self.scc_cyclic[sid])
                .map(|(_, members)| {
                    let mut g: Vec<MethodId> = members.iter().map(|&v| self.methods[v]).collect();
                    g.sort();
                    g
                })
                .collect();
            groups.sort();
            groups
        })
    }

    /// Classifies `m` against a projection (pre-converted with
    /// [`projection_bits`](ApplicabilityIndex::projection_bits)):
    /// `Some(true)` = applicable, `Some(false)` = not applicable, `None` =
    /// the index cannot decide (method outside the universe, or its
    /// reachable region is disjunctive/case-2) and the caller must use the
    /// pass-based engine.
    pub fn verdict(&self, m: MethodId, projection: &AttrBitSet) -> Option<bool> {
        let &i = self.node_of.get(&m)?;
        let sid = self.scc_of[i];
        if self.scc_fallback[sid] {
            return None;
        }
        Some(!self.scc_dead[sid] && self.scc_footprint[sid].is_subset(projection))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ValueType;
    use crate::body::{BodyBuilder, Expr};
    use crate::methods::{MethodKind, Specializer};

    #[test]
    fn bitset_roundtrip_across_word_boundaries() {
        let mut set = AttrBitSet::new(130);
        assert!(set.is_empty());
        for i in [0usize, 63, 64, 129] {
            set.insert(AttrId::from_index(i));
        }
        assert_eq!(set.len(), 4);
        assert!(set.contains(AttrId::from_index(64)));
        assert!(!set.contains(AttrId::from_index(65)));
        let ids: Vec<usize> = set.iter().map(|a| a.index()).collect();
        assert_eq!(ids, vec![0, 63, 64, 129]);

        let mut bigger = set.clone();
        bigger.insert(AttrId::from_index(200)); // grows past sized capacity
        assert!(set.is_subset(&bigger));
        assert!(!bigger.is_subset(&set));
        let mut union = AttrBitSet::new(130);
        union.union_with(&bigger);
        assert_eq!(union, bigger);
    }

    /// Chain m0 → m1 → get_x plus an independent reader of y.
    fn chain_schema() -> (Schema, TypeId) {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        s.add_reader(y, a).unwrap();
        let f1 = s.add_gf("f1", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f1,
            "m1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let f0 = s.add_gf("f0", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f1, vec![Expr::Param(0)]);
        s.add_method(
            f0,
            "m0",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        (s, a)
    }

    #[test]
    fn footprints_propagate_through_chains() {
        let (s, a) = chain_schema();
        let idx = ApplicabilityIndex::build(&s, a).unwrap();
        assert!(idx.is_fully_indexed());
        assert_eq!(idx.universe().len(), 4);
        // Acyclic: one SCC per method.
        assert_eq!(idx.n_sccs(), 4);

        let x = s.attr_id("x").unwrap();
        let y = s.attr_id("y").unwrap();
        let m0 = s.method_by_label("m0").unwrap();
        let fp = idx.footprint(m0).unwrap();
        assert!(fp.contains(x) && !fp.contains(y));

        let proj_x = idx.projection_bits(&[x].into_iter().collect());
        let proj_y = idx.projection_bits(&[y].into_iter().collect());
        assert_eq!(idx.verdict(m0, &proj_x), Some(true));
        assert_eq!(idx.verdict(m0, &proj_y), Some(false));
    }

    #[test]
    fn cycle_collapses_to_one_scc_and_shares_footprint() {
        // p1 ↔ q1 cycle where q1 also reads x: both get footprint {x}.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        let p = s.add_gf("p", 1, None).unwrap();
        let q = s.add_gf("q", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(q, vec![Expr::Param(0)]);
        let p1 = s
            .add_method(
                p,
                "p1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(p, vec![Expr::Param(0)]);
        bb.call(get_x, vec![Expr::Param(0)]);
        let q1 = s
            .add_method(
                q,
                "q1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let idx = ApplicabilityIndex::build(&s, a).unwrap();
        assert!(idx.is_fully_indexed());
        // 3 nodes (accessor, p1, q1) but p1/q1 share one SCC.
        assert_eq!(idx.n_sccs(), 2);
        assert_eq!(idx.footprint(p1), idx.footprint(q1));
        let empty = idx.projection_bits(&BTreeSet::new());
        assert_eq!(idx.verdict(p1, &empty), Some(false));
        let proj_x = idx.projection_bits(&[x].into_iter().collect());
        assert_eq!(idx.verdict(q1, &proj_x), Some(true));
    }

    #[test]
    fn multi_candidate_call_falls_back() {
        // B ≤ A; f has methods on A and B, so the call f(p0) from h1 with
        // source B has two candidates — disjunctive, not indexable; the
        // accessors below stay indexable.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (get_x, mx) = s.add_reader(x, a).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let h = s.add_gf("h", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f, vec![Expr::Param(0)]);
        let h1 = s
            .add_method(
                h,
                "h1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let idx = ApplicabilityIndex::build(&s, b).unwrap();
        assert!(!idx.is_fully_indexed());
        let proj = idx.projection_bits(&[x].into_iter().collect());
        assert_eq!(idx.verdict(h1, &proj), None, "disjunction must defer");
        assert_eq!(idx.verdict(mx, &proj), Some(true), "leaves stay indexed");
        // Methods outside the universe are not the index's business.
        let unrelated = s.add_type("U", &[]).unwrap();
        let g = s.add_gf("g", 1, None).unwrap();
        let m_u = s
            .add_method(
                g,
                "g_u",
                vec![Specializer::Type(unrelated)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let idx = ApplicabilityIndex::build(&s, b).unwrap();
        assert_eq!(idx.verdict(m_u, &proj), None);
        assert!(idx.footprint(m_u).is_none());
    }

    #[test]
    fn unsatisfiable_call_marks_dead() {
        // m calls a gf with no applicable method at all: dead under every
        // projection.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let u = s.add_type("U", &[]).unwrap();
        let g = s.add_gf("g", 1, None).unwrap();
        s.add_method(
            g,
            "g_u",
            vec![Specializer::Type(u)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(g, vec![Expr::Param(0)]);
        let m = s
            .add_method(
                f,
                "m",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let idx = ApplicabilityIndex::build(&s, a).unwrap();
        let full = idx.projection_bits(&s.cumulative_attrs(a));
        assert_eq!(idx.verdict(m, &full), Some(false));
    }

    /// B ≤ A with attrs x, y; f has f_a(A) reading x and f_b(B) with an
    /// empty body (footprint ∅ — the ⊆-minimum); h1 calls f. From source
    /// B the call is disjunctive.
    fn disjunctive_schema() -> (Schema, TypeId) {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let h = s.add_gf("h", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f, vec![Expr::Param(0)]);
        s.add_method(
            h,
            "h1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        (s, b)
    }

    #[test]
    fn semantic_refinement_collapses_minimum_footprint_disjunction() {
        let (s, b) = disjunctive_schema();
        let h1 = s.method_by_label("h1").unwrap();
        let syntactic = ApplicabilityIndex::build(&s, b).unwrap();
        assert!(!syntactic.is_fully_indexed());
        assert_eq!(syntactic.precision(), AnalysisPrecision::Syntactic);

        let semantic = ApplicabilityIndex::build_with(&s, b, AnalysisPrecision::Semantic).unwrap();
        assert_eq!(semantic.precision(), AnalysisPrecision::Semantic);
        // f_b's empty footprint is the ⊆-minimum, so the f-call collapses
        // and h1 becomes indexable: applicable under every projection.
        assert!(semantic.is_fully_indexed());
        let empty = semantic.projection_bits(&BTreeSet::new());
        assert_eq!(semantic.verdict(h1, &empty), Some(true));
        assert_eq!(syntactic.verdict(h1, &empty), None);
        // The collapsed edge points at the minimum candidate.
        let f_b = s.method_by_label("f_b").unwrap();
        let callees: Vec<MethodId> = semantic.callees(h1).unwrap().collect();
        assert_eq!(callees, vec![f_b]);
    }

    #[test]
    fn semantic_refinement_keeps_incomparable_candidates_fallback() {
        // f_a reads x, f_b reads y: footprints {x} and {y} are
        // incomparable — the disjunction cannot collapse.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        let (get_y, _) = s.add_reader(y, a).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_y, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let h = s.add_gf("h", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f, vec![Expr::Param(0)]);
        let h1 = s
            .add_method(
                h,
                "h1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let semantic = ApplicabilityIndex::build_with(&s, b, AnalysisPrecision::Semantic).unwrap();
        assert!(!semantic.is_fully_indexed());
        let proj = semantic.projection_bits(&[x].into_iter().collect());
        assert_eq!(semantic.verdict(h1, &proj), None, "incomparable must defer");
    }

    #[test]
    fn semantic_refinement_drops_dead_candidates() {
        // f_a's body calls a gf with no applicable method (dead); f_b is
        // the live remainder — the disjunction collapses to f_b alone.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let u = s.add_type("U", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        let dead_gf = s.add_gf("dead", 1, None).unwrap();
        s.add_method(
            dead_gf,
            "dead_u",
            vec![Specializer::Type(u)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(dead_gf, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let h = s.add_gf("h", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f, vec![Expr::Param(0)]);
        let h1 = s
            .add_method(
                h,
                "h1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let semantic = ApplicabilityIndex::build_with(&s, b, AnalysisPrecision::Semantic).unwrap();
        assert!(semantic.is_fully_indexed());
        let proj_x = semantic.projection_bits(&[x].into_iter().collect());
        assert_eq!(semantic.verdict(h1, &proj_x), Some(true));
        assert_eq!(
            semantic.verdict(h1, &semantic.projection_bits(&BTreeSet::new())),
            Some(false)
        );
    }

    #[test]
    fn precision_parses_and_displays() {
        assert_eq!(
            "semantic".parse::<AnalysisPrecision>().unwrap(),
            AnalysisPrecision::Semantic
        );
        assert_eq!(AnalysisPrecision::Syntactic.to_string(), "syntactic");
        assert!("exact".parse::<AnalysisPrecision>().is_err());
    }
}
