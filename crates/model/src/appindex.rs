//! The applicability condensation index: amortized O(V+E) `IsApplicable`.
//!
//! The pass-based `IsApplicable` engine in `td-core` re-walks the method
//! call graph from scratch for **every** projection over a source type,
//! with `O(passes × methods)` worst-case behavior. But the call graph
//! itself depends only on `(schema, source)` — the projection list enters
//! the computation *only* at the accessor leaves. This module precomputes
//! everything projection-independent once per schema generation:
//!
//! 1. the **call graph** over the universe (every method applicable to the
//!    source type), with one edge per §4.1 candidate of every
//!    source-relevant call site;
//! 2. its **Tarjan SCC condensation**, computed iteratively (an explicit
//!    frame stack, so 500-deep call chains cannot overflow the thread
//!    stack), whose emission order is reverse topological;
//! 3. per-SCC **attribute footprints** — dense [`AttrBitSet`]s holding
//!    every accessor attribute transitively reachable from the SCC —
//!    propagated bottom-up in a single O(V+E) pass, together with a
//!    `dead` bit (some reachable site has no candidate at all) and a
//!    `fallback` bit (see below).
//!
//! A projection query then classifies a method with one subset test:
//! applicable iff nothing reachable is dead and `footprint ⊆ projection`.
//!
//! ## The fallback seam
//!
//! The subset test is exact only for the *conjunctive* fragment of the
//! call graph: call sites with exactly one candidate are AND-edges, and
//! the greatest fixpoint over an AND-graph is reachability of failures.
//! Two features of §4.1 break pure conjunction:
//!
//! * a site with **several candidates** survives if *any* candidate does
//!   (disjunction — a footprint union would over-approximate the
//!   requirement);
//! * a site hitting the **case-2 multi-source rule** (two or more
//!   source-relevant argument positions) takes the call as written, and
//!   its verdict interacts with the same OR-structure.
//!
//! Methods whose reachable region contains either feature get the
//! `fallback` bit (the bit propagates caller-ward through the
//! condensation, because a caller's verdict depends on its callees').
//! [`ApplicabilityIndex::verdict`] returns `None` for them and the caller
//! (in `td-core`) re-runs the pass-based engine for exactly that residue,
//! seeded with the indexed verdicts — so results are identical by
//! construction, and the common all-AND case never enters the pass loop.
//!
//! The index is cached inside [`Schema`] behind the same generation
//! counter as the dispatch tables (see [`crate::cache`]), so a schema
//! clone — in particular every [`crate::SchemaSnapshot`] fork handed to a
//! batch worker — carries the warm index for free.

use crate::dispatch::CallArg;
use crate::error::Result;
use crate::ids::{AttrId, MethodId, TypeId};
use crate::schema::Schema;
use std::collections::{BTreeSet, HashMap};

/// A dense attribute bitset keyed by [`AttrId`] arena index.
///
/// One bit per attribute slot of the schema the set was sized for;
/// operations between sets sized for the same schema are word-parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrBitSet {
    words: Vec<u64>,
}

impl AttrBitSet {
    /// An empty set sized for a schema with `n_attrs` attribute slots.
    pub fn new(n_attrs: usize) -> AttrBitSet {
        AttrBitSet {
            words: vec![0u64; n_attrs.div_ceil(64).max(1)],
        }
    }

    /// Inserts an attribute (growing the set if the id is beyond the
    /// sized capacity, so stale sizing degrades to allocation, not loss).
    pub fn insert(&mut self, a: AttrId) {
        let w = a.index() / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (a.index() % 64);
    }

    /// True iff the attribute is in the set.
    pub fn contains(&self, a: AttrId) -> bool {
        self.words
            .get(a.index() / 64)
            .is_some_and(|w| w & (1u64 << (a.index() % 64)) != 0)
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &AttrBitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (dst, &src) in self.words.iter_mut().zip(other.words.iter()) {
            *dst |= src;
        }
    }

    /// True iff every attribute of `self` is in `other`.
    pub fn is_subset(&self, other: &AttrBitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates the members in id order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(AttrId::from_index(wi * 64 + bit))
            })
        })
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// The per-`(schema generation, source type)` applicability index.
///
/// Built once by [`Schema::cached_applicability_index`] and shared via
/// `Arc`; answers most [`verdict`](ApplicabilityIndex::verdict) queries
/// with a bitset subset test. See the module docs for the construction
/// and the exactness argument.
#[derive(Debug, Clone)]
pub struct ApplicabilityIndex {
    pub(crate) source: TypeId,
    pub(crate) n_attrs: usize,
    /// The universe (methods applicable to `source`), in method-id order;
    /// node `i` of the call graph is `methods[i]`.
    pub(crate) methods: Vec<MethodId>,
    pub(crate) node_of: HashMap<MethodId, usize>,
    /// Node → SCC id, in Tarjan emission (= reverse topological) order.
    pub(crate) scc_of: Vec<usize>,
    /// Per-SCC union of transitively reachable accessor attributes.
    pub(crate) scc_footprint: Vec<AttrBitSet>,
    /// Per-SCC: some reachable call site has no candidate at all.
    pub(crate) scc_dead: Vec<bool>,
    /// Per-SCC: some reachable site is disjunctive or case-2 — the subset
    /// test is not exact and the caller must use the pass-based engine.
    pub(crate) scc_fallback: Vec<bool>,
    /// Per-SCC node membership, in emission order (matches `scc_of` ids).
    pub(crate) scc_members: Vec<Vec<usize>>,
    /// Per-SCC: the component contains an internal call edge — a genuine
    /// call ring (size > 1, or a self-recursive method). Verdicts inside
    /// such components rest on the §4 optimistic assumption.
    pub(crate) scc_cyclic: Vec<bool>,
    /// Number of universe methods whose verdict needs the fallback.
    pub(crate) fallback_methods: usize,
}

impl ApplicabilityIndex {
    /// Builds the index for projections over `source`: call-graph
    /// construction, iterative Tarjan condensation, and one bottom-up
    /// footprint/dead/fallback propagation pass.
    pub fn build(schema: &Schema, source: TypeId) -> Result<ApplicabilityIndex> {
        let methods = schema.methods_applicable_to_type(source);
        let n = methods.len();
        let node_of: HashMap<MethodId, usize> =
            methods.iter().enumerate().map(|(i, &m)| (m, i)).collect();

        // ---- call-graph construction ------------------------------------
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut local_attr: Vec<Option<AttrId>> = vec![None; n];
        let mut local_dead = vec![false; n];
        let mut local_fallback = vec![false; n];
        let mut scratch: Vec<CallArg> = Vec::new();
        for (i, &m) in methods.iter().enumerate() {
            if let Some(attr) = schema.method(m).kind.accessed_attr() {
                local_attr[i] = Some(attr);
                continue;
            }
            for site in schema.call_sites(m, source)? {
                if site.source_positions.is_empty() {
                    continue;
                }
                let (candidates, _) = schema.site_candidates(source, &site, &mut scratch);
                if candidates.is_empty() {
                    // An unsatisfiable call: the method dies under every
                    // projection. Reachability propagates the bit upward.
                    local_dead[i] = true;
                    continue;
                }
                if site.source_positions.len() > 1 || candidates.len() > 1 {
                    local_fallback[i] = true;
                }
                for c in candidates {
                    match node_of.get(&c) {
                        Some(&j) => {
                            if !edges[i].contains(&j) {
                                edges[i].push(j);
                            }
                        }
                        // Candidates of source-relevant sites are always
                        // applicable to the source type (the substituted
                        // position subsumes it), so this arm is
                        // unreachable — but if the model ever relaxes
                        // that, degrade to the exact engine rather than
                        // guess.
                        None => local_fallback[i] = true,
                    }
                }
            }
        }

        // ---- iterative Tarjan SCC condensation --------------------------
        const UNVISITED: usize = usize::MAX;
        let mut disc = vec![UNVISITED; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut tarjan_stack: Vec<usize> = Vec::new();
        let mut scc_of = vec![UNVISITED; n];
        let mut scc_members: Vec<Vec<usize>> = Vec::new();
        let mut next_disc = 0usize;
        // Explicit DFS frames `(node, next edge offset)` — recursion depth
        // equals call-chain depth, which the workloads push to 500+.
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if disc[root] != UNVISITED {
                continue;
            }
            disc[root] = next_disc;
            low[root] = next_disc;
            next_disc += 1;
            tarjan_stack.push(root);
            on_stack[root] = true;
            frames.push((root, 0));
            while let Some(&(v, ep)) = frames.last() {
                if let Some(&w) = edges[v].get(ep) {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if disc[w] == UNVISITED {
                        disc[w] = next_disc;
                        low[w] = next_disc;
                        next_disc += 1;
                        tarjan_stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(disc[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (p, _)) = frames.last_mut() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == disc[v] {
                        let sid = scc_members.len();
                        let mut members = Vec::new();
                        loop {
                            let w = tarjan_stack.pop().expect("SCC stack holds v");
                            on_stack[w] = false;
                            scc_of[w] = sid;
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc_members.push(members);
                    }
                }
            }
        }

        // ---- bottom-up propagation in emission order --------------------
        // Tarjan pops an SCC only after every SCC it can reach was popped,
        // so emission order is reverse topological: every cross edge from
        // SCC `sid` targets an SCC with a smaller id, already finalized.
        let n_attrs = schema.n_attrs();
        let n_sccs = scc_members.len();
        let mut scc_footprint: Vec<AttrBitSet> = Vec::with_capacity(n_sccs);
        let mut scc_dead = vec![false; n_sccs];
        let mut scc_fallback = vec![false; n_sccs];
        for (sid, members) in scc_members.iter().enumerate() {
            let mut fp = AttrBitSet::new(n_attrs);
            for &v in members {
                if let Some(a) = local_attr[v] {
                    fp.insert(a);
                }
                scc_dead[sid] |= local_dead[v];
                scc_fallback[sid] |= local_fallback[v];
                for &w in &edges[v] {
                    let ws = scc_of[w];
                    if ws == sid {
                        continue;
                    }
                    debug_assert!(ws < sid, "emission order must be reverse topological");
                    fp.union_with(&scc_footprint[ws]);
                    scc_dead[sid] |= scc_dead[ws];
                    scc_fallback[sid] |= scc_fallback[ws];
                }
            }
            scc_footprint.push(fp);
        }

        let fallback_methods = (0..n).filter(|&i| scc_fallback[scc_of[i]]).count();
        // An SCC is a call ring iff it has an internal edge: components of
        // size > 1 always do (strong connectivity), and singletons only
        // when the method calls itself.
        let mut scc_cyclic = vec![false; n_sccs];
        for (v, out) in edges.iter().enumerate() {
            for &w in out {
                if scc_of[w] == scc_of[v] {
                    scc_cyclic[scc_of[v]] = true;
                }
            }
        }
        Ok(ApplicabilityIndex {
            source,
            n_attrs,
            methods,
            node_of,
            scc_of,
            scc_footprint,
            scc_dead,
            scc_fallback,
            scc_members,
            scc_cyclic,
            fallback_methods,
        })
    }

    /// The source type the index was built for.
    pub fn source(&self) -> TypeId {
        self.source
    }

    /// The universe the index classifies (methods applicable to the
    /// source type), in method-id order.
    pub fn universe(&self) -> &[MethodId] {
        &self.methods
    }

    /// Number of strongly connected components in the condensation.
    pub fn n_sccs(&self) -> usize {
        self.scc_footprint.len()
    }

    /// Number of universe methods whose verdict requires the pass-based
    /// fallback (disjunctive or case-2 structure in their reachable
    /// region).
    pub fn fallback_methods(&self) -> usize {
        self.fallback_methods
    }

    /// True when every universe method is decided by the subset test.
    pub fn is_fully_indexed(&self) -> bool {
        self.fallback_methods == 0
    }

    /// Converts a projection list into the index's bitset representation,
    /// sized to be word-compatible with the stored footprints.
    pub fn projection_bits(&self, projection: &BTreeSet<AttrId>) -> AttrBitSet {
        let mut bits = AttrBitSet::new(self.n_attrs);
        for &a in projection {
            bits.insert(a);
        }
        bits
    }

    /// The transitive attribute footprint of a universe method (every
    /// accessor attribute reachable through its §4.1 candidate edges), or
    /// `None` for methods outside the universe. Exact only for
    /// non-fallback methods — fallback regions contain disjunctions the
    /// union over-approximates.
    pub fn footprint(&self, m: MethodId) -> Option<&AttrBitSet> {
        let &i = self.node_of.get(&m)?;
        Some(&self.scc_footprint[self.scc_of[i]])
    }

    /// True when `m`'s applicability verdict for this source rests on the
    /// §4 optimistic cycle assumption: the method sits on a call ring
    /// (nontrivial SCC, or self-recursion) of the condensed call graph.
    pub fn in_cycle(&self, m: MethodId) -> bool {
        match self.node_of.get(&m) {
            Some(&i) => self.scc_cyclic[self.scc_of[i]],
            None => false,
        }
    }

    /// The call rings of the condensed graph: one group per SCC with an
    /// internal edge, members sorted by method id, groups ordered by their
    /// smallest member. These are exactly the regions where §4's
    /// `IsApplicable` assumes methods applicable before checking them.
    pub fn cycle_groups(&self) -> Vec<Vec<MethodId>> {
        let mut groups: Vec<Vec<MethodId>> = self
            .scc_members
            .iter()
            .enumerate()
            .filter(|&(sid, _)| self.scc_cyclic[sid])
            .map(|(_, members)| {
                let mut g: Vec<MethodId> = members.iter().map(|&v| self.methods[v]).collect();
                g.sort();
                g
            })
            .collect();
        groups.sort();
        groups
    }

    /// Classifies `m` against a projection (pre-converted with
    /// [`projection_bits`](ApplicabilityIndex::projection_bits)):
    /// `Some(true)` = applicable, `Some(false)` = not applicable, `None` =
    /// the index cannot decide (method outside the universe, or its
    /// reachable region is disjunctive/case-2) and the caller must use the
    /// pass-based engine.
    pub fn verdict(&self, m: MethodId, projection: &AttrBitSet) -> Option<bool> {
        let &i = self.node_of.get(&m)?;
        let sid = self.scc_of[i];
        if self.scc_fallback[sid] {
            return None;
        }
        Some(!self.scc_dead[sid] && self.scc_footprint[sid].is_subset(projection))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ValueType;
    use crate::body::{BodyBuilder, Expr};
    use crate::methods::{MethodKind, Specializer};

    #[test]
    fn bitset_roundtrip_across_word_boundaries() {
        let mut set = AttrBitSet::new(130);
        assert!(set.is_empty());
        for i in [0usize, 63, 64, 129] {
            set.insert(AttrId::from_index(i));
        }
        assert_eq!(set.len(), 4);
        assert!(set.contains(AttrId::from_index(64)));
        assert!(!set.contains(AttrId::from_index(65)));
        let ids: Vec<usize> = set.iter().map(|a| a.index()).collect();
        assert_eq!(ids, vec![0, 63, 64, 129]);

        let mut bigger = set.clone();
        bigger.insert(AttrId::from_index(200)); // grows past sized capacity
        assert!(set.is_subset(&bigger));
        assert!(!bigger.is_subset(&set));
        let mut union = AttrBitSet::new(130);
        union.union_with(&bigger);
        assert_eq!(union, bigger);
    }

    /// Chain m0 → m1 → get_x plus an independent reader of y.
    fn chain_schema() -> (Schema, TypeId) {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        s.add_reader(y, a).unwrap();
        let f1 = s.add_gf("f1", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f1,
            "m1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let f0 = s.add_gf("f0", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f1, vec![Expr::Param(0)]);
        s.add_method(
            f0,
            "m0",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        (s, a)
    }

    #[test]
    fn footprints_propagate_through_chains() {
        let (s, a) = chain_schema();
        let idx = ApplicabilityIndex::build(&s, a).unwrap();
        assert!(idx.is_fully_indexed());
        assert_eq!(idx.universe().len(), 4);
        // Acyclic: one SCC per method.
        assert_eq!(idx.n_sccs(), 4);

        let x = s.attr_id("x").unwrap();
        let y = s.attr_id("y").unwrap();
        let m0 = s.method_by_label("m0").unwrap();
        let fp = idx.footprint(m0).unwrap();
        assert!(fp.contains(x) && !fp.contains(y));

        let proj_x = idx.projection_bits(&[x].into_iter().collect());
        let proj_y = idx.projection_bits(&[y].into_iter().collect());
        assert_eq!(idx.verdict(m0, &proj_x), Some(true));
        assert_eq!(idx.verdict(m0, &proj_y), Some(false));
    }

    #[test]
    fn cycle_collapses_to_one_scc_and_shares_footprint() {
        // p1 ↔ q1 cycle where q1 also reads x: both get footprint {x}.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        let p = s.add_gf("p", 1, None).unwrap();
        let q = s.add_gf("q", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(q, vec![Expr::Param(0)]);
        let p1 = s
            .add_method(
                p,
                "p1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(p, vec![Expr::Param(0)]);
        bb.call(get_x, vec![Expr::Param(0)]);
        let q1 = s
            .add_method(
                q,
                "q1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let idx = ApplicabilityIndex::build(&s, a).unwrap();
        assert!(idx.is_fully_indexed());
        // 3 nodes (accessor, p1, q1) but p1/q1 share one SCC.
        assert_eq!(idx.n_sccs(), 2);
        assert_eq!(idx.footprint(p1), idx.footprint(q1));
        let empty = idx.projection_bits(&BTreeSet::new());
        assert_eq!(idx.verdict(p1, &empty), Some(false));
        let proj_x = idx.projection_bits(&[x].into_iter().collect());
        assert_eq!(idx.verdict(q1, &proj_x), Some(true));
    }

    #[test]
    fn multi_candidate_call_falls_back() {
        // B ≤ A; f has methods on A and B, so the call f(p0) from h1 with
        // source B has two candidates — disjunctive, not indexable; the
        // accessors below stay indexable.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (get_x, mx) = s.add_reader(x, a).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let h = s.add_gf("h", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f, vec![Expr::Param(0)]);
        let h1 = s
            .add_method(
                h,
                "h1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let idx = ApplicabilityIndex::build(&s, b).unwrap();
        assert!(!idx.is_fully_indexed());
        let proj = idx.projection_bits(&[x].into_iter().collect());
        assert_eq!(idx.verdict(h1, &proj), None, "disjunction must defer");
        assert_eq!(idx.verdict(mx, &proj), Some(true), "leaves stay indexed");
        // Methods outside the universe are not the index's business.
        let unrelated = s.add_type("U", &[]).unwrap();
        let g = s.add_gf("g", 1, None).unwrap();
        let m_u = s
            .add_method(
                g,
                "g_u",
                vec![Specializer::Type(unrelated)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let idx = ApplicabilityIndex::build(&s, b).unwrap();
        assert_eq!(idx.verdict(m_u, &proj), None);
        assert!(idx.footprint(m_u).is_none());
    }

    #[test]
    fn unsatisfiable_call_marks_dead() {
        // m calls a gf with no applicable method at all: dead under every
        // projection.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let u = s.add_type("U", &[]).unwrap();
        let g = s.add_gf("g", 1, None).unwrap();
        s.add_method(
            g,
            "g_u",
            vec![Specializer::Type(u)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(g, vec![Expr::Param(0)]);
        let m = s
            .add_method(
                f,
                "m",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let idx = ApplicabilityIndex::build(&s, a).unwrap();
        let full = idx.projection_bits(&s.cumulative_attrs(a));
        assert_eq!(idx.verdict(m, &full), Some(false));
    }
}
