//! Intraprocedural data-flow analyses over method bodies.
//!
//! The paper relies on (but does not spell out) two analyses:
//!
//! * §4.1: "the set of generic function calls in the body of `m_k` that
//!   need to be checked … is determined by data flow analysis" — for each
//!   call we must know which argument positions carry values that
//!   *correspond to* (i.e. flow from) formal parameters of `m_k` whose
//!   types are supertypes of the source type `T`.
//! * §6.4: "the set of types that are assigned transitively a value of one
//!   of the types in X … is determined by the standard definition-use flow
//!   analysis" — assignments and returns induce type-to-type flow edges.
//!
//! Both are simple forward may-analyses; the IR has no loops (recursion is
//! inter-method, handled by `IsApplicable`'s cycle machinery), so a
//! fixpoint over the statement list converges in at most `#locals + 1`
//! passes.

use crate::attrs::{PrimType, ValueType};
use crate::body::{BinOp, Expr, Literal, Stmt};
use crate::dispatch::CallArg;
use crate::error::Result;
use crate::ids::{GfId, MethodId, TypeId};
use crate::methods::Specializer;
use crate::schema::Schema;

/// One generic-function call found in a method body, with the static types
/// of its arguments and the argument positions that carry source-relevant
/// parameter flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called generic function.
    pub gf: GfId,
    /// Static type of each actual argument.
    pub args: Vec<CallArg>,
    /// Argument positions whose value flows from a formal parameter of the
    /// enclosing method whose specializer is a supertype of the source
    /// type, and whose own static type is also a supertype of the source
    /// type — the positions §4.1's case analysis substitutes.
    pub source_positions: Vec<usize>,
}

impl Schema {
    /// Static type of an expression within `method`'s body, as a
    /// [`CallArg`]. `Null` is returned for null literals and for calls to
    /// generic functions without a declared result.
    pub fn static_expr_type(&self, method: MethodId, expr: &Expr) -> CallArg {
        let m = self.method(method);
        match expr {
            Expr::Param(i) => match m.specializers.get(*i) {
                Some(Specializer::Type(t)) => CallArg::Object(*t),
                Some(Specializer::Prim(p)) => CallArg::Prim(*p),
                None => CallArg::Null,
            },
            Expr::Var(v) => match m.body().and_then(|b| b.locals.get(v.index())) {
                Some(local) => match local.ty {
                    ValueType::Object(t) => CallArg::Object(t),
                    ValueType::Prim(p) => CallArg::Prim(p),
                },
                None => CallArg::Null,
            },
            Expr::Lit(Literal::Int(_)) => CallArg::Prim(PrimType::Int),
            Expr::Lit(Literal::Float(_)) => CallArg::Prim(PrimType::Float),
            Expr::Lit(Literal::Bool(_)) => CallArg::Prim(PrimType::Bool),
            Expr::Lit(Literal::Str(_)) => CallArg::Prim(PrimType::Str),
            Expr::Lit(Literal::Null) => CallArg::Null,
            Expr::Call { gf, .. } => match self.gf(*gf).result {
                Some(ValueType::Object(t)) => CallArg::Object(t),
                Some(ValueType::Prim(p)) => CallArg::Prim(p),
                None => CallArg::Null,
            },
            Expr::BinOp { op, lhs, .. } => match op {
                BinOp::Lt | BinOp::Eq | BinOp::And | BinOp::Or => CallArg::Prim(PrimType::Bool),
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    self.static_expr_type(method, lhs)
                }
            },
        }
    }

    /// Computes, for each local variable of `method`, whether a value
    /// flowing from one of the `seed` parameters may reach it (forward
    /// may-taint to fixpoint; `if` branches join with logical or).
    pub fn taint_locals(&self, method: MethodId, seed: &[bool]) -> Vec<bool> {
        let Some(body) = self.method(method).body() else {
            return Vec::new();
        };
        let mut tainted = vec![false; body.locals.len()];
        loop {
            let mut changed = false;
            body.visit_stmts(&mut |s| {
                if let Stmt::Assign { var, value } = s {
                    if !tainted[var.index()] && expr_tainted(value, seed, &tainted) {
                        tainted[var.index()] = true;
                        changed = true;
                    }
                }
            });
            if !changed {
                return tainted;
            }
        }
    }

    /// All generic-function calls in `method`'s body with their static
    /// argument types and source-relevant positions with respect to the
    /// projection source type `source` (§4.1).
    ///
    /// Calls with no source-relevant position impose no applicability
    /// constraint and are still returned (with empty `source_positions`)
    /// so callers can see the whole call graph.
    pub fn call_sites(&self, method: MethodId, source: TypeId) -> Result<Vec<CallSite>> {
        self.check_type(source)?;
        let m = self.method(method);
        let Some(body) = m.body() else {
            return Ok(Vec::new());
        };
        // Seed: parameters whose object specializer is a supertype of
        // `source` ("those method arguments that are supertypes of the
        // source type T").
        let seed: Vec<bool> = m
            .specializers
            .iter()
            .map(|s| matches!(s, Specializer::Type(t) if self.is_subtype(source, *t)))
            .collect();
        let tainted = self.taint_locals(method, &seed);

        let mut out = Vec::new();
        body.visit_exprs(&mut |e| {
            if let Expr::Call { gf, args } = e {
                let mut site = CallSite {
                    gf: *gf,
                    args: Vec::with_capacity(args.len()),
                    source_positions: Vec::new(),
                };
                for (j, a) in args.iter().enumerate() {
                    let st = self.static_expr_type(method, a);
                    let flows_from_param = expr_tainted(a, &seed, &tainted);
                    let supertype_of_source =
                        matches!(st, CallArg::Object(u) if self.is_subtype(source, u));
                    if flows_from_param && supertype_of_source {
                        site.source_positions.push(j);
                    }
                    site.args.push(st);
                }
                out.push(site);
            }
        });
        Ok(out)
    }

    /// Definition-use flow edges of `method` at the type level (§6.4):
    /// `(target, value)` pairs where an expression whose static type is
    /// `Object(value)` is assigned to a variable declared `Object(target)`
    /// or returned from a method whose result is `Object(target)`.
    pub fn assignment_edges(&self, method: MethodId) -> Vec<(TypeId, TypeId)> {
        let m = self.method(method);
        let Some(body) = m.body() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let result_obj = match m.result {
            Some(ValueType::Object(t)) => Some(t),
            _ => None,
        };
        body.visit_stmts(&mut |s| match s {
            Stmt::Assign { var, value } => {
                let target = match body.locals.get(var.index()).map(|l| l.ty) {
                    Some(ValueType::Object(t)) => t,
                    _ => return,
                };
                if let CallArg::Object(v) = self.static_expr_type(method, value) {
                    out.push((target, v));
                }
            }
            Stmt::Return(value) => {
                if let (Some(target), CallArg::Object(v)) =
                    (result_obj, self.static_expr_type(method, value))
                {
                    out.push((target, v));
                }
            }
            _ => {}
        });
        out
    }

    /// True iff some `return` expression of `method` carries a value
    /// flowing from one of the given parameter positions — used by §6.3's
    /// "the result type of the method is processed in the same way".
    pub fn returns_tainted(&self, method: MethodId, converted_params: &[usize]) -> bool {
        let m = self.method(method);
        let Some(body) = m.body() else {
            return false;
        };
        let n = m.specializers.len();
        let mut seed = vec![false; n];
        for &p in converted_params {
            if p < n {
                seed[p] = true;
            }
        }
        let tainted = self.taint_locals(method, &seed);
        let mut found = false;
        body.visit_stmts(&mut |s| {
            if let Stmt::Return(e) = s {
                if expr_tainted(e, &seed, &tainted) {
                    found = true;
                }
            }
        });
        found
    }

    /// Local variables of `method` whose declared (object) types must be
    /// re-typed when the given parameter positions are converted to
    /// surrogate types: the §6.3 "reachability set for the use of all
    /// parameters that are to be converted".
    pub fn locals_reached_by_params(
        &self,
        method: MethodId,
        converted_params: &[usize],
    ) -> Vec<crate::ids::VarId> {
        let m = self.method(method);
        let n = m.specializers.len();
        let mut seed = vec![false; n];
        for &p in converted_params {
            if p < n {
                seed[p] = true;
            }
        }
        let tainted = self.taint_locals(method, &seed);
        tainted
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| crate::ids::VarId::from_index(i))
            .collect()
    }
}

fn expr_tainted(e: &Expr, param_seed: &[bool], var_taint: &[bool]) -> bool {
    match e {
        Expr::Param(i) => param_seed.get(*i).copied().unwrap_or(false),
        Expr::Var(v) => var_taint.get(v.index()).copied().unwrap_or(false),
        // A call result is a fresh value, not "the parameter itself": the
        // paper's correspondence is between call arguments and formals.
        Expr::Call { .. } | Expr::Lit(_) => false,
        Expr::BinOp { lhs, rhs, .. } => {
            expr_tainted(lhs, param_seed, var_taint) || expr_tainted(rhs, param_seed, var_taint)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyBuilder;
    use crate::methods::MethodKind;

    /// B <= A. Method on B with locals and calls; source = B.
    struct Fix {
        s: Schema,
        a: TypeId,
        b: TypeId,
        n: GfId,
        m: MethodId,
    }

    fn fix() -> Fix {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let n = s.add_gf("n", 1, Some(ValueType::Object(a))).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        // f(x: A) = { v: A; v <- x; n(v); n(n(x)) }
        let mut bb = BodyBuilder::new();
        let v = bb.local("v", ValueType::Object(a));
        bb.assign(v, Expr::Param(0));
        bb.call(n, vec![Expr::Var(v)]);
        bb.call(n, vec![Expr::call(n, vec![Expr::Param(0)])]);
        let m = s
            .add_method(
                f,
                "f1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        Fix { s, a, b, n, m }
    }

    #[test]
    fn taint_flows_through_assignment() {
        let Fix { s, m, .. } = fix();
        let tainted = s.taint_locals(m, &[true]);
        assert_eq!(tainted, vec![true]);
        let untainted = s.taint_locals(m, &[false]);
        assert_eq!(untainted, vec![false]);
    }

    #[test]
    fn call_sites_find_source_positions() {
        let Fix { s, a, b, n, m } = fix();
        let sites = s.call_sites(m, b).unwrap();
        // Three calls: n(v), n(n(x)) outer, n(x) inner.
        assert_eq!(sites.len(), 3);
        // n(v): v is tainted and declared A, B <= A -> position 0 relevant.
        assert_eq!(sites[0].gf, n);
        assert_eq!(sites[0].source_positions, vec![0]);
        assert_eq!(sites[0].args, vec![CallArg::Object(a)]);
        // Outer n(n(x)): argument is a call result -> not a correspondence.
        assert_eq!(sites[1].source_positions, Vec::<usize>::new());
        // Inner n(x): x is the parameter itself.
        assert_eq!(sites[2].source_positions, vec![0]);
    }

    #[test]
    fn static_types_of_literals_and_ops() {
        let Fix { s, m, .. } = fix();
        assert_eq!(
            s.static_expr_type(m, &Expr::int(3)),
            CallArg::Prim(PrimType::Int)
        );
        assert_eq!(
            s.static_expr_type(m, &Expr::Lit(Literal::Null)),
            CallArg::Null
        );
        let cmp = Expr::binop(BinOp::Lt, Expr::int(1), Expr::int(2));
        assert_eq!(s.static_expr_type(m, &cmp), CallArg::Prim(PrimType::Bool));
        let add = Expr::binop(BinOp::Add, Expr::int(1), Expr::int(2));
        assert_eq!(s.static_expr_type(m, &add), CallArg::Prim(PrimType::Int));
    }

    #[test]
    fn assignment_edges_cover_assign_and_return() {
        // z1(c: C) = { g: G; g <- c; return g }  — the paper's §6.3 example:
        // assigning a C value into a G variable.
        let mut s = Schema::new();
        let g_ty = s.add_type("G", &[]).unwrap();
        let c_ty = s.add_type("C", &[g_ty]).unwrap();
        let z = s.add_gf("z", 1, Some(ValueType::Object(g_ty))).unwrap();
        let mut bb = BodyBuilder::new();
        let g = bb.local("g", ValueType::Object(g_ty));
        bb.assign(g, Expr::Param(0));
        bb.ret(Expr::Var(g));
        let m = s
            .add_method(
                z,
                "z1",
                vec![Specializer::Type(c_ty)],
                MethodKind::General(bb.finish()),
                Some(ValueType::Object(g_ty)),
            )
            .unwrap();
        let edges = s.assignment_edges(m);
        assert_eq!(edges, vec![(g_ty, c_ty), (g_ty, g_ty)]);
    }

    #[test]
    fn reachability_set_for_converted_params() {
        let Fix { s, m, .. } = fix();
        let vars = s.locals_reached_by_params(m, &[0]);
        assert_eq!(vars.len(), 1);
        let none = s.locals_reached_by_params(m, &[]);
        assert!(none.is_empty());
    }

    #[test]
    fn taint_joins_if_branches() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        let v = bb.local("v", ValueType::Object(a));
        let w = bb.local("w", ValueType::Object(a));
        bb.if_(
            Expr::Lit(Literal::Bool(true)),
            vec![Stmt::Assign {
                var: v,
                value: Expr::Param(0),
            }],
            vec![],
        );
        // w <- v : tainted only via the then-branch.
        bb.assign(w, Expr::Var(v));
        let m = s
            .add_method(
                f,
                "f1",
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        assert_eq!(s.taint_locals(m, &[true]), vec![true, true]);
    }
}
