//! Attributes and the small value-type lattice they range over.
//!
//! Per §2 of the paper, the *state* of a type is a set of named attributes,
//! each associated with a type. We distinguish primitive-valued attributes
//! (integers, floats, booleans, strings) from object-valued attributes that
//! reference another type in the hierarchy. Attribute names are globally
//! unique (a simplifying assumption made by the paper and enforced here).

use crate::ids::{NameId, TypeId};
use std::fmt;

/// Primitive (non-object) value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for PrimType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimType::Int => write!(f, "int"),
            PrimType::Float => write!(f, "float"),
            PrimType::Bool => write!(f, "bool"),
            PrimType::Str => write!(f, "str"),
        }
    }
}

/// The static type of an attribute, variable, parameter or result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// A primitive value.
    Prim(PrimType),
    /// A reference to an instance of the given type (or any subtype —
    /// inclusion polymorphism, §2).
    Object(TypeId),
}

impl ValueType {
    /// Shorthand for `ValueType::Prim(PrimType::Int)`.
    pub const INT: ValueType = ValueType::Prim(PrimType::Int);
    /// Shorthand for `ValueType::Prim(PrimType::Float)`.
    pub const FLOAT: ValueType = ValueType::Prim(PrimType::Float);
    /// Shorthand for `ValueType::Prim(PrimType::Bool)`.
    pub const BOOL: ValueType = ValueType::Prim(PrimType::Bool);
    /// Shorthand for `ValueType::Prim(PrimType::Str)`.
    pub const STR: ValueType = ValueType::Prim(PrimType::Str);

    /// Returns the referenced type if this is an object type.
    #[inline]
    pub fn as_object(self) -> Option<TypeId> {
        match self {
            ValueType::Object(t) => Some(t),
            ValueType::Prim(_) => None,
        }
    }

    /// True if this is an object type.
    #[inline]
    pub fn is_object(self) -> bool {
        matches!(self, ValueType::Object(_))
    }
}

impl From<PrimType> for ValueType {
    fn from(p: PrimType) -> Self {
        ValueType::Prim(p)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Prim(p) => write!(f, "{p}"),
            ValueType::Object(t) => write!(f, "obj({t})"),
        }
    }
}

/// Definition of one named attribute.
///
/// The *owner* is where the attribute is currently local; state
/// factorization (§5) moves attributes between a type and its surrogate,
/// which updates the owner but never the identity ([`crate::ids::AttrId`])
/// of the attribute — that identity stability is what makes the paper's
/// "same cumulative state" invariant checkable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Globally unique attribute name, interned in the schema's arena
    /// (resolve with [`crate::Schema::attr_name`]).
    pub name: NameId,
    /// Type of the attribute's values.
    pub ty: ValueType,
    /// The type at which the attribute is currently locally defined.
    pub owner: TypeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_type_display() {
        assert_eq!(ValueType::INT.to_string(), "int");
        assert_eq!(ValueType::Object(TypeId(4)).to_string(), "obj(T4)");
    }

    #[test]
    fn as_object() {
        assert_eq!(ValueType::Object(TypeId(1)).as_object(), Some(TypeId(1)));
        assert_eq!(ValueType::STR.as_object(), None);
        assert!(ValueType::Object(TypeId(0)).is_object());
        assert!(!ValueType::BOOL.is_object());
    }

    #[test]
    fn prim_into_value_type() {
        let v: ValueType = PrimType::Bool.into();
        assert_eq!(v, ValueType::BOOL);
    }
}
