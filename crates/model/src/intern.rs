//! The name-interning arena: every type, attribute and generic-function
//! name (and every method label) lives here exactly once, addressed by a
//! dense [`NameId`].
//!
//! The runtime model is ID-only — [`crate::TypeNode`], [`crate::AttrDef`],
//! [`crate::GenericFunction`] and [`crate::Method`] hold `NameId`s, and the
//! schema's name→entity lookup maps are keyed by `NameId` (a `u32` hash)
//! instead of `String`. Interning buys three things at once:
//!
//! * **cheap forks** — a [`crate::SchemaSnapshot::fork`] used to deep-copy
//!   three `HashMap<String, _>` maps plus one owned `String` per entity;
//!   now it memcpys one text buffer, one span vector and one flat
//!   `u64→u32` bucket map (collision chains live in a plain `Vec`, so no
//!   per-entry allocations survive into the clone);
//! * **cheap hashing** — hot-path lookups hash 4 bytes, not a string;
//! * **a compact snapshot** — the binary snapshot format
//!   ([`crate::snapshot`]) serializes the arena once and every entity
//!   record is fixed-width integers.
//!
//! Storage layout: names are appended to one contiguous `buf`, addressed
//! by `(offset, len)` spans. Dedup uses an FNV-1a index: `heads` maps a
//! 64-bit hash to the first [`NameId`] with that hash, and `next` chains
//! ids that collide. The chain is checked with a real string compare, so
//! hash collisions cost a walk, never a wrong answer.

use crate::ids::NameId;
use std::collections::HashMap;

/// Chain terminator in [`NameTable::next`].
const NONE: u32 = u32::MAX;

/// 64-bit FNV-1a over a byte string (the arena's bucket hash).
#[inline]
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An append-only string-interning arena (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NameTable {
    /// Every interned name, concatenated.
    buf: String,
    /// `(byte offset, byte length)` into `buf`, indexed by [`NameId`].
    spans: Vec<(u32, u32)>,
    /// FNV-1a hash → first [`NameId`] index of the collision chain.
    heads: HashMap<u64, u32>,
    /// Per-name link to the next id with the same hash (`NONE` ends the
    /// chain). Indexed by [`NameId`], parallel to `spans`.
    next: Vec<u32>,
}

impl NameTable {
    /// An empty arena.
    pub fn new() -> NameTable {
        NameTable::default()
    }

    /// Interns `s`, returning the existing id if the exact string is
    /// already present.
    pub fn intern(&mut self, s: &str) -> NameId {
        let h = fnv1a(s.as_bytes());
        let mut cursor = self.heads.get(&h).copied().unwrap_or(NONE);
        while cursor != NONE {
            let id = NameId(cursor);
            if self.resolve(id) == s {
                return id;
            }
            cursor = self.next[id.index()];
        }
        let id = NameId::from_index(self.spans.len());
        let off = u32::try_from(self.buf.len()).expect("name arena exceeds 4 GiB");
        let len = u32::try_from(s.len()).expect("name longer than 4 GiB");
        self.buf.push_str(s);
        self.spans.push((off, len));
        // New id becomes the chain head; the old head (if any) chains on.
        let old_head = self.heads.insert(h, id.0).unwrap_or(NONE);
        self.next.push(old_head);
        id
    }

    /// Finds the id of `s` without interning it.
    pub fn lookup(&self, s: &str) -> Option<NameId> {
        let mut cursor = self.heads.get(&fnv1a(s.as_bytes())).copied()?;
        while cursor != NONE {
            let id = NameId(cursor);
            if self.resolve(id) == s {
                return Some(id);
            }
            cursor = self.next[id.index()];
        }
        None
    }

    /// The string for an interned id.
    ///
    /// # Panics
    /// Panics on an id not minted by this arena (a cross-schema mixup).
    #[inline]
    pub fn resolve(&self, id: NameId) -> &str {
        let (off, len) = self.spans[id.index()];
        &self.buf[off as usize..(off + len) as usize]
    }

    /// Number of distinct interned names.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True iff nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes of interned text (the arena buffer length).
    #[inline]
    pub fn text_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The raw text buffer (snapshot serialization).
    pub(crate) fn buf(&self) -> &str {
        &self.buf
    }

    /// The raw span table (snapshot serialization).
    pub(crate) fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Rebuilds an arena from a serialized buffer + span table, recomputing
    /// the hash index. Returns `None` if any span is out of bounds or cuts
    /// a UTF-8 boundary — the caller turns that into a corruption error.
    pub(crate) fn from_parts(buf: String, spans: Vec<(u32, u32)>) -> Option<NameTable> {
        let mut table = NameTable {
            buf,
            spans,
            heads: HashMap::with_capacity(0),
            next: Vec::new(),
        };
        table.heads.reserve(table.spans.len());
        table.next.reserve(table.spans.len());
        for i in 0..table.spans.len() {
            let (off, len) = table.spans[i];
            let (start, end) = (off as usize, off as usize + len as usize);
            if end > table.buf.len()
                || !table.buf.is_char_boundary(start)
                || !table.buf.is_char_boundary(end)
            {
                return None;
            }
            let h = fnv1a(&table.buf.as_bytes()[start..end]);
            let old_head = table.heads.insert(h, i as u32).unwrap_or(NONE);
            table.next.push(old_head);
        }
        Some(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut t = NameTable::new();
        let a = t.intern("Person");
        let b = t.intern("Employee");
        assert_ne!(a, b);
        assert_eq!(t.intern("Person"), a);
        assert_eq!(t.resolve(a), "Person");
        assert_eq!(t.resolve(b), "Employee");
        assert_eq!(t.len(), 2);
        assert_eq!(t.text_bytes(), "PersonEmployee".len());
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = NameTable::new();
        assert!(t.lookup("x").is_none());
        let x = t.intern("x");
        assert_eq!(t.lookup("x"), Some(x));
        assert!(t.lookup("y").is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_and_unicode_names() {
        let mut t = NameTable::new();
        let e = t.intern("");
        let u = t.intern("tÿpé");
        assert_eq!(t.resolve(e), "");
        assert_eq!(t.resolve(u), "tÿpé");
        assert_eq!(t.lookup(""), Some(e));
    }

    #[test]
    fn many_names_roundtrip() {
        let mut t = NameTable::new();
        let ids: Vec<NameId> = (0..1000).map(|i| t.intern(&format!("name_{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.resolve(*id), format!("name_{i}"));
            assert_eq!(t.lookup(&format!("name_{i}")), Some(*id));
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn from_parts_rebuilds_index() {
        let mut t = NameTable::new();
        t.intern("alpha");
        t.intern("beta");
        let rebuilt =
            NameTable::from_parts(t.buf().to_string(), t.spans().to_vec()).expect("valid parts");
        assert_eq!(rebuilt, t);
        assert_eq!(rebuilt.lookup("beta"), t.lookup("beta"));
    }

    #[test]
    fn from_parts_rejects_bad_spans() {
        assert!(NameTable::from_parts("ab".into(), vec![(0, 3)]).is_none());
        assert!(NameTable::from_parts("ab".into(), vec![(5, 1)]).is_none());
        // A span cutting a multi-byte character is rejected.
        assert!(NameTable::from_parts("é".into(), vec![(0, 1)]).is_none());
    }

    #[test]
    fn clone_is_independent() {
        let mut t = NameTable::new();
        t.intern("a");
        let snap = t.clone();
        t.intern("b");
        assert_eq!(snap.len(), 1);
        assert_eq!(t.len(), 2);
    }
}
