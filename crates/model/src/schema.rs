//! The [`Schema`]: single owner of types, attributes, generic functions and
//! methods.
//!
//! Everything the paper's algorithms touch lives here, addressed by dense
//! ids. The struct is `Clone` — the invariant checkers snapshot a schema
//! before a derivation and compare observable behavior afterwards.

use crate::attrs::{AttrDef, ValueType};
use crate::cache::DispatchCache;
use crate::delta::SchemaDelta;
use crate::error::{ModelError, Result};
use crate::hierarchy::{TypeNode, TypeOrigin};
use crate::ids::{AttrId, GfId, MethodId, NameId, TypeId};
use crate::intern::NameTable;
use crate::methods::{GenericFunction, Method, MethodKind, Specializer};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

/// An object-oriented schema per §2 of the paper: a DAG of types with
/// precedence-ordered multiple inheritance, globally unique named
/// attributes, and generic functions implemented by multi-methods.
///
/// Every name in the runtime model is interned: entities carry [`NameId`]s
/// into the schema's [`NameTable`] arena, and the name→entity lookup maps
/// are keyed by `NameId`. String-typed entry points ([`Schema::type_id`]
/// and friends) resolve through the arena first.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    pub(crate) names: NameTable,
    pub(crate) types: Vec<TypeNode>,
    pub(crate) type_names: HashMap<NameId, TypeId>,
    pub(crate) attrs: Vec<AttrDef>,
    pub(crate) attr_names: HashMap<NameId, AttrId>,
    pub(crate) gfs: Vec<GenericFunction>,
    pub(crate) gf_names: HashMap<NameId, GfId>,
    pub(crate) methods: Vec<Method>,
    /// The dispatch acceleration layer (see [`crate::cache`]). Every
    /// mutator below bumps its generation via [`Schema::note_mutation`].
    pub(crate) cache: DispatchCache,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Records that the schema changed: bumps the cache generation and
    /// files a structured delta describing *what* changed, so the next
    /// cached read can evict only the entries whose dependency closure the
    /// delta reaches (see [`crate::cache`] and [`crate::delta`]). Called
    /// from every `&mut self` path that can alter dispatch-relevant state;
    /// conservative over-description ([`SchemaDelta::Full`]) is fine,
    /// missing a mutation is not.
    #[inline]
    pub(crate) fn note_mutation(&mut self, delta: SchemaDelta) {
        self.cache.note(delta);
    }

    // ---------------------------------------------------------------- names

    /// Interns a string into the schema's name arena, returning its id.
    /// Interning alone never invalidates caches — nothing dispatch-relevant
    /// changes until the name is attached to an entity.
    pub fn intern(&mut self, s: &str) -> NameId {
        self.names.intern(s)
    }

    /// The string for an interned name id.
    #[inline]
    pub fn name(&self, n: NameId) -> &str {
        self.names.resolve(n)
    }

    /// Finds the id of an already-interned name without interning it.
    pub fn lookup_name(&self, s: &str) -> Option<NameId> {
        self.names.lookup(s)
    }

    /// The name-interning arena (read access for stats and serialization).
    #[inline]
    pub fn name_table(&self) -> &NameTable {
        &self.names
    }

    // ---------------------------------------------------------------- types

    /// Adds an original type with the given direct supertypes; the slice
    /// order defines inheritance precedence (first = highest, numbered 1).
    pub fn add_type(&mut self, name: impl Into<String>, supers: &[TypeId]) -> Result<TypeId> {
        self.add_type_with_origin(name, supers, TypeOrigin::Original)
    }

    /// Adds a surrogate type (no supertype edges yet — `FactorState` wires
    /// them explicitly).
    pub fn add_surrogate(&mut self, name: impl Into<String>, source: TypeId) -> Result<TypeId> {
        self.check_type(source)?;
        self.add_type_with_origin(name, &[], TypeOrigin::Surrogate { source })
    }

    fn add_type_with_origin(
        &mut self,
        name: impl Into<String>,
        supers: &[TypeId],
        origin: TypeOrigin,
    ) -> Result<TypeId> {
        let name = name.into();
        let name_id = self.names.intern(&name);
        if self.type_names.contains_key(&name_id) {
            return Err(ModelError::DuplicateTypeName(name));
        }
        for &s in supers {
            self.check_type(s)?;
        }
        let id = TypeId::from_index(self.types.len());
        self.note_mutation(SchemaDelta::TypeAdded(id));
        self.types.push(TypeNode {
            name: name_id,
            local_attrs: Vec::new(),
            supers: Vec::new(),
            origin,
            dead: false,
        });
        self.type_names.insert(name_id, id);
        for (i, &s) in supers.iter().enumerate() {
            self.add_super_with_prec(id, s, i as i32 + 1)?;
        }
        Ok(id)
    }

    /// Re-marks an existing type as a surrogate of `source` (used by the
    /// text parser, where `surrogate of` clauses may reference types
    /// declared later in the file).
    pub fn mark_surrogate(&mut self, t: TypeId, source: TypeId) -> Result<()> {
        self.check_type(t)?;
        self.check_type(source)?;
        if t == source {
            return Err(ModelError::Invalid(format!(
                "type {t} cannot be its own surrogate"
            )));
        }
        self.type_node_mut(t).origin = TypeOrigin::Surrogate { source };
        Ok(())
    }

    /// Immutable access to a type node.
    ///
    /// # Panics
    /// Panics on an out-of-range id (ids are only minted by this schema, so
    /// this indicates a cross-schema mixup).
    #[inline]
    pub fn type_(&self, t: TypeId) -> &TypeNode {
        &self.types[t.index()]
    }

    /// Looks a type up by name.
    pub fn type_id(&self, name: &str) -> Result<TypeId> {
        self.names
            .lookup(name)
            .and_then(|n| self.type_names.get(&n).copied())
            .ok_or_else(|| ModelError::UnknownTypeName(name.to_string()))
    }

    /// The name of a type.
    #[inline]
    pub fn type_name(&self, t: TypeId) -> &str {
        self.names.resolve(self.type_(t).name)
    }

    /// Number of allocated type slots (including retired ones).
    #[inline]
    pub fn n_types(&self) -> usize {
        self.types.len()
    }

    /// Iterates ids of live (non-retired) types.
    pub fn live_type_ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.types
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead)
            .map(|(i, _)| TypeId::from_index(i))
    }

    /// True if the id refers to a live type.
    pub fn is_live(&self, t: TypeId) -> bool {
        t.index() < self.types.len() && !self.types[t.index()].dead
    }

    pub(crate) fn check_type(&self, t: TypeId) -> Result<()> {
        if self.is_live(t) {
            Ok(())
        } else {
            Err(ModelError::BadTypeId(t))
        }
    }

    pub(crate) fn unregister_type_name(&mut self, t: TypeId) {
        self.note_mutation(SchemaDelta::TypeTouched(t));
        let name = self.types[t.index()].name;
        self.type_names.remove(&name);
    }

    // ---------------------------------------------------------- attributes

    /// Defines a new attribute local to `owner`. Names are globally unique.
    pub fn add_attr(
        &mut self,
        name: impl Into<String>,
        ty: ValueType,
        owner: TypeId,
    ) -> Result<AttrId> {
        let name = name.into();
        self.check_type(owner)?;
        let name_id = self.names.intern(&name);
        if self.attr_names.contains_key(&name_id) {
            return Err(ModelError::DuplicateAttrName(name));
        }
        if let ValueType::Object(t) = ty {
            self.check_type(t)?;
        }
        let id = AttrId::from_index(self.attrs.len());
        self.note_mutation(SchemaDelta::AttrAdded(id));
        self.attrs.push(AttrDef {
            name: name_id,
            ty,
            owner,
        });
        self.attr_names.insert(name_id, id);
        // Direct push, not `type_node_mut`: adding an attribute changes no
        // supertype edge, so it must not dirty the owner's CPL/dispatch
        // entries the way a touched type node would.
        self.types[owner.index()].local_attrs.push(id);
        Ok(id)
    }

    /// Immutable access to an attribute definition.
    #[inline]
    pub fn attr(&self, a: AttrId) -> &AttrDef {
        &self.attrs[a.index()]
    }

    pub(crate) fn attr_mut(&mut self, a: AttrId) -> &mut AttrDef {
        self.note_mutation(SchemaDelta::AttrTouched(a));
        &mut self.attrs[a.index()]
    }

    /// Looks an attribute up by name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.names
            .lookup(name)
            .and_then(|n| self.attr_names.get(&n).copied())
            .ok_or_else(|| ModelError::UnknownAttrName(name.to_string()))
    }

    /// The name of an attribute.
    #[inline]
    pub fn attr_name(&self, a: AttrId) -> &str {
        self.names.resolve(self.attr(a).name)
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Iterates all attribute ids.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attrs.len()).map(AttrId::from_index)
    }

    pub(crate) fn check_attr(&self, a: AttrId) -> Result<()> {
        if a.index() < self.attrs.len() {
            Ok(())
        } else {
            Err(ModelError::BadAttrId(a))
        }
    }

    // ---------------------------------------------------- generic functions

    /// Declares a generic function with the given arity and result contract.
    pub fn add_gf(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        result: Option<ValueType>,
    ) -> Result<GfId> {
        let name = name.into();
        let name_id = self.names.intern(&name);
        if self.gf_names.contains_key(&name_id) {
            return Err(ModelError::DuplicateGfName(name));
        }
        let id = GfId::from_index(self.gfs.len());
        self.note_mutation(SchemaDelta::GfAdded(id));
        self.gfs.push(GenericFunction {
            name: name_id,
            arity,
            result,
            methods: Vec::new(),
        });
        self.gf_names.insert(name_id, id);
        Ok(id)
    }

    /// Immutable access to a generic function.
    #[inline]
    pub fn gf(&self, g: GfId) -> &GenericFunction {
        &self.gfs[g.index()]
    }

    /// Looks a generic function up by name.
    pub fn gf_id(&self, name: &str) -> Result<GfId> {
        self.names
            .lookup(name)
            .and_then(|n| self.gf_names.get(&n).copied())
            .ok_or_else(|| ModelError::UnknownGfName(name.to_string()))
    }

    /// The name of a generic function.
    #[inline]
    pub fn gf_name(&self, g: GfId) -> &str {
        self.names.resolve(self.gf(g).name)
    }

    /// Number of generic functions.
    #[inline]
    pub fn n_gfs(&self) -> usize {
        self.gfs.len()
    }

    /// Iterates all generic-function ids.
    pub fn gf_ids(&self) -> impl Iterator<Item = GfId> {
        (0..self.gfs.len()).map(GfId::from_index)
    }

    pub(crate) fn check_gf(&self, g: GfId) -> Result<()> {
        if g.index() < self.gfs.len() {
            Ok(())
        } else {
            Err(ModelError::BadGfId(g))
        }
    }

    // -------------------------------------------------------------- methods

    /// Adds a method to a generic function. The specializer list length must
    /// equal the generic function's arity; accessor methods must access an
    /// attribute available at their (single) specializer.
    pub fn add_method(
        &mut self,
        gf: GfId,
        label: impl Into<String>,
        specializers: Vec<Specializer>,
        kind: MethodKind,
        result: Option<ValueType>,
    ) -> Result<MethodId> {
        self.check_gf(gf)?;
        let expected = self.gf(gf).arity;
        if specializers.len() != expected {
            return Err(ModelError::ArityMismatch {
                gf,
                expected,
                got: specializers.len(),
            });
        }
        for s in &specializers {
            if let Specializer::Type(t) = s {
                self.check_type(*t)?;
            }
        }
        // Two methods of one generic function with identical specializer
        // tuples would make dispatch ambiguous (CLOS redefines instead of
        // coexisting); reject them.
        if self
            .gf(gf)
            .methods
            .iter()
            .any(|&m| self.method(m).specializers == specializers)
        {
            return Err(ModelError::Invalid(format!(
                "duplicate method signature for generic function `{}`",
                self.gf_name(gf)
            )));
        }
        if let Some(attr) = kind.accessed_attr() {
            self.check_attr(attr)?;
            let at = specializers
                .first()
                .and_then(|s| s.as_type())
                .ok_or_else(|| {
                    ModelError::Invalid("accessor method needs an object first argument".into())
                })?;
            if !self.attr_available_at(attr, at) {
                return Err(ModelError::AccessorAttrUnavailable { attr, at });
            }
        }
        let label = self.names.intern(&label.into());
        let id = MethodId::from_index(self.methods.len());
        self.note_mutation(SchemaDelta::MethodAdded { gf, method: id });
        self.methods.push(Method {
            gf,
            label,
            specializers,
            kind,
            result,
        });
        self.gfs[gf.index()].methods.push(id);
        Ok(id)
    }

    /// Immutable access to a method.
    #[inline]
    pub fn method(&self, m: MethodId) -> &Method {
        &self.methods[m.index()]
    }

    /// Mutable access to a method (used by method factorization to rewrite
    /// signatures and bodies in place, preserving the method's identity).
    #[inline]
    pub fn method_mut(&mut self, m: MethodId) -> &mut Method {
        let gf = self.methods[m.index()].gf;
        self.note_mutation(SchemaDelta::MethodTouched { gf, method: m });
        &mut self.methods[m.index()]
    }

    /// Number of methods.
    #[inline]
    pub fn n_methods(&self) -> usize {
        self.methods.len()
    }

    /// Iterates all method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len()).map(MethodId::from_index)
    }

    /// The display label of a method.
    #[inline]
    pub fn method_label(&self, m: MethodId) -> &str {
        self.names.resolve(self.method(m).label)
    }

    /// Looks a method up by its display label.
    pub fn method_by_label(&self, label: &str) -> Result<MethodId> {
        self.names
            .lookup(label)
            .and_then(|n| self.method_ids().find(|&m| self.method(m).label == n))
            .ok_or_else(|| ModelError::Invalid(format!("no method labelled `{label}`")))
    }

    // ------------------------------------------------- accessor conveniences

    /// Creates the reader generic function + method `get_<attr>` specialized
    /// at `at` (which may be a proper subtype of the attribute's owner, as
    /// with the paper's `get_h2(B)`). Returns `(gf, method)`.
    pub fn add_reader(&mut self, attr: AttrId, at: TypeId) -> Result<(GfId, MethodId)> {
        self.check_attr(attr)?;
        let name = format!("get_{}", self.attr_name(attr));
        let result = Some(self.attr(attr).ty);
        let gf = match self.gf_id(&name) {
            Ok(g) => g,
            Err(_) => self.add_gf(name.clone(), 1, result)?,
        };
        let m = self.add_method(
            gf,
            name,
            vec![Specializer::Type(at)],
            MethodKind::Reader(attr),
            result,
        )?;
        Ok((gf, m))
    }

    /// Creates the writer generic function + method `set_<attr>` specialized
    /// at `at`, taking the new value as a second argument. Returns
    /// `(gf, method)`.
    pub fn add_writer(&mut self, attr: AttrId, at: TypeId) -> Result<(GfId, MethodId)> {
        self.check_attr(attr)?;
        let name = format!("set_{}", self.attr_name(attr));
        let value_spec = match self.attr(attr).ty {
            ValueType::Prim(p) => Specializer::Prim(p),
            ValueType::Object(t) => Specializer::Type(t),
        };
        let gf = match self.gf_id(&name) {
            Ok(g) => g,
            Err(_) => self.add_gf(name.clone(), 2, None)?,
        };
        let m = self.add_method(
            gf,
            name,
            vec![Specializer::Type(at), value_spec],
            MethodKind::Writer(attr),
            None,
        )?;
        Ok((gf, m))
    }

    /// Creates reader and writer accessors for `attr` at its owner type.
    pub fn add_accessors(&mut self, attr: AttrId) -> Result<()> {
        let owner = self.attr(attr).owner;
        self.add_reader(attr, owner)?;
        self.add_writer(attr, owner)?;
        Ok(())
    }

    // ------------------------------------------------------------ snapshots

    /// Freezes a copy-on-write snapshot of this schema (one deep clone;
    /// every [`SchemaSnapshot::clone`] after that is a pointer bump).
    pub fn snapshot(&self) -> SchemaSnapshot {
        SchemaSnapshot {
            inner: Arc::new(self.clone()),
        }
    }

    /// Freezes this schema into a snapshot without cloning it.
    pub fn into_snapshot(self) -> SchemaSnapshot {
        SchemaSnapshot {
            inner: Arc::new(self),
        }
    }
}

/// A cheap copy-on-write snapshot of a [`Schema`], shareable across
/// threads.
///
/// Read paths (`&Schema`) borrow the one shared schema — including its
/// dispatch-acceleration cache, so lookups any holder performs warm the
/// cache for every other holder of the same snapshot (the cache sits
/// behind a `Mutex` and is keyed by the generation counter, which no one
/// can bump through a snapshot because mutation requires `&mut Schema`).
/// Write paths must first [`fork`](SchemaSnapshot::fork) a private deep
/// copy; the fork carries the warm cache entries along, and its
/// mutations are invisible to the snapshot and to sibling forks.
///
/// This is the isolation primitive of the batch derivation engine
/// (`td-driver`): one snapshot of the base schema is shared read-only by
/// every worker, and each derivation runs on its own fork.
#[derive(Debug, Clone)]
pub struct SchemaSnapshot {
    inner: Arc<Schema>,
}

impl SchemaSnapshot {
    /// The shared, read-only schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.inner
    }

    /// A private deep copy for mutation (the copy-on-write "write" step).
    /// The fork starts from the snapshot's exact state, warm cache
    /// entries included.
    pub fn fork(&self) -> Schema {
        (*self.inner).clone()
    }

    /// Number of live handles to the shared schema (snapshot clones, not
    /// forks). Diagnostic only.
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl Deref for SchemaSnapshot {
    type Target = Schema;

    #[inline]
    fn deref(&self) -> &Schema {
        &self.inner
    }
}

impl From<Schema> for SchemaSnapshot {
    fn from(schema: Schema) -> Self {
        schema.into_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::PrimType;

    #[test]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.add_type("A", &[]).unwrap();
        assert!(matches!(
            s.add_type("A", &[]),
            Err(ModelError::DuplicateTypeName(_))
        ));
        let a = s.type_id("A").unwrap();
        s.add_attr("x", ValueType::INT, a).unwrap();
        assert!(matches!(
            s.add_attr("x", ValueType::STR, a),
            Err(ModelError::DuplicateAttrName(_))
        ));
        s.add_gf("f", 1, None).unwrap();
        assert!(matches!(
            s.add_gf("f", 2, None),
            Err(ModelError::DuplicateGfName(_))
        ));
    }

    #[test]
    fn method_arity_checked() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 2, None).unwrap();
        let err = s
            .add_method(
                f,
                "f1",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::ArityMismatch { .. }));
    }

    #[test]
    fn accessor_attr_must_be_available() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[]).unwrap(); // unrelated
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        assert!(s.add_reader(x, b).is_err());
        // ...but a subtype of the owner is fine (paper: get_h2(B)).
        let c = s.add_type("C", &[a]).unwrap();
        s.add_reader(x, c).unwrap();
    }

    #[test]
    fn accessor_conveniences_create_gfs() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("pay", ValueType::FLOAT, a).unwrap();
        s.add_accessors(x).unwrap();
        let get = s.gf_id("get_pay").unwrap();
        let set = s.gf_id("set_pay").unwrap();
        assert_eq!(s.gf(get).arity, 1);
        assert_eq!(s.gf(set).arity, 2);
        assert_eq!(s.gf(get).result, Some(ValueType::FLOAT));
        let m = s.gf(set).methods[0];
        assert_eq!(
            s.method(m).specializers[1],
            Specializer::Prim(PrimType::Float)
        );
    }

    #[test]
    fn shared_reader_gf_for_subtype_specializations() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (g1, _) = s.add_reader(x, a).unwrap();
        let (g2, _) = s.add_reader(x, b).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(s.gf(g1).methods.len(), 2);
    }

    #[test]
    fn method_lookup_by_label() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let m = s
            .add_method(
                f,
                "f_a",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        assert_eq!(s.method_by_label("f_a").unwrap(), m);
        assert!(s.method_by_label("nope").is_err());
    }

    #[test]
    fn clone_is_deep() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let snapshot = s.clone();
        s.add_attr("x", ValueType::INT, a).unwrap();
        assert_eq!(snapshot.n_attrs(), 0);
        assert_eq!(s.n_attrs(), 1);
    }

    #[test]
    fn snapshot_clones_share_one_schema() {
        let mut s = Schema::new();
        s.add_type("A", &[]).unwrap();
        let snap = s.snapshot();
        let other = snap.clone();
        assert_eq!(snap.handles(), 2);
        // Both handles observe the same underlying allocation.
        assert!(std::ptr::eq(snap.schema(), other.schema()));
        drop(other);
        assert_eq!(snap.handles(), 1);
    }

    #[test]
    fn forks_are_isolated_from_snapshot_and_siblings() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let snap = s.into_snapshot();
        let mut fork1 = snap.fork();
        let mut fork2 = snap.fork();
        fork1.add_attr("x", ValueType::INT, a).unwrap();
        fork2.add_attr("y", ValueType::STR, a).unwrap();
        assert_eq!(snap.n_attrs(), 0);
        assert_eq!(fork1.n_attrs(), 1);
        assert_eq!(fork2.n_attrs(), 1);
        assert!(fork1.attr_id("y").is_err());
        assert!(fork2.attr_id("x").is_err());
    }

    #[test]
    fn snapshot_reads_warm_the_shared_cache() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let snap = s.into_snapshot();
        let other = snap.clone();
        snap.cpl(b).unwrap();
        // The sibling handle sees the entry the first handle populated.
        let stats = other.dispatch_cache_stats();
        assert!(stats.cpl_entries > 0, "{stats:?}");
        // Forks carry the warm entries with them.
        let fork = other.fork();
        assert!(fork.dispatch_cache_stats().cpl_entries > 0);
    }
}
