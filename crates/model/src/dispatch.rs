//! Multi-method applicability and dispatch (§2, §4).
//!
//! Two distinct notions of applicability appear in the paper and both live
//! here:
//!
//! * **applicable to a type** — `m_k(T¹_k … Tⁿ_k)` is applicable to type
//!   `T` if some `T ≤ Tⁱ_k`. This selects the methods whose behavior a
//!   derived type *might* inherit; `IsApplicable` in `td-core` then filters
//!   by what the bodies actually touch.
//! * **applicable to a call** — `m_k` is applicable to the call
//!   `m(T¹ … Tⁿ)` if `∀i. Tⁱ ≤ Tⁱ_k`.
//!
//! Among several methods applicable to a call, precedence is decided by the
//! standard argument-ordered comparison: compare the CPL positions of the
//! specializers in the actual argument types' CPLs, left to right.

use crate::attrs::PrimType;
use crate::cache::Ranks;
use crate::dataflow::CallSite;
use crate::error::Result;
use crate::ids::{GfId, MethodId, TypeId};
use crate::methods::Specializer;
use crate::schema::Schema;
use std::sync::Arc;

/// The (static or dynamic) type of one actual argument of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallArg {
    /// An object of the given type (an instance of it or, statically, an
    /// expression of that declared type).
    Object(TypeId),
    /// A primitive of the given kind.
    Prim(PrimType),
    /// The null reference — compatible with every object specializer.
    Null,
}

impl CallArg {
    fn matches(self, schema: &Schema, spec: Specializer) -> bool {
        match (self, spec) {
            (CallArg::Object(t), Specializer::Type(s)) => schema.is_subtype(t, s),
            (CallArg::Prim(p), Specializer::Prim(q)) => p == q,
            (CallArg::Null, Specializer::Type(_)) => true,
            _ => false,
        }
    }
}

impl Schema {
    /// True iff method `m` is *applicable to the type* `t`: some object
    /// specializer `Tⁱ` of `m` satisfies `t ≤ Tⁱ` (§4).
    pub fn method_applicable_to_type(&self, m: MethodId, t: TypeId) -> bool {
        self.method(m)
            .type_specializers()
            .any(|(_, spec)| self.is_subtype(t, spec))
    }

    /// All methods (of any generic function) applicable to the type `t`,
    /// in method-id order. These are the candidates `IsApplicable` tests
    /// for a projection over `t`.
    pub fn methods_applicable_to_type(&self, t: TypeId) -> Vec<MethodId> {
        self.method_ids()
            .filter(|&m| self.method_applicable_to_type(m, t))
            .collect()
    }

    /// True iff method `m` is applicable to a call of its generic function
    /// with the given actual argument types.
    pub fn method_applicable_to_call(&self, m: MethodId, args: &[CallArg]) -> bool {
        let specs = &self.method(m).specializers;
        specs.len() == args.len()
            && args
                .iter()
                .zip(specs.iter())
                .all(|(&a, &s)| a.matches(self, s))
    }

    /// The methods of `gf` applicable to a call with the given argument
    /// types, in definition order (unranked). Served from the dispatch
    /// cache; the first call per `(gf, args)` per schema generation scans
    /// the method list, later calls are a table lookup.
    pub fn applicable_methods(&self, gf: GfId, args: &[CallArg]) -> Vec<MethodId> {
        self.cached_applicable(gf, args).as_ref().clone()
    }

    /// [`Schema::applicable_methods`] bypassing the dispatch cache
    /// (neither reads nor populates it). Kept public so tests and
    /// benchmarks can compare cached and uncached results.
    pub fn applicable_methods_uncached(&self, gf: GfId, args: &[CallArg]) -> Vec<MethodId> {
        self.gf(gf)
            .methods
            .iter()
            .copied()
            .filter(|&m| self.method_applicable_to_call(m, args))
            .collect()
    }

    /// The candidate methods for one call site of a method body, per the
    /// §4.1 case analysis of `IsApplicable`: with exactly one
    /// source-relevant argument position `j`, the candidates are the
    /// methods applicable to the call with the source type substituted at
    /// `j` (case 1, returning `Some(j)`); with several, the candidates are
    /// the methods applicable to the call as written (case 2, `None`) —
    /// which is what guarantees applicability for *every* combination of
    /// substitutions. Sites with no source-relevant position impose no
    /// constraint and return an empty candidate list.
    ///
    /// `scratch` is a caller-owned buffer reused for the case-1 argument
    /// substitution, so the per-site `args` clone is amortized away across
    /// a whole applicability walk. Every applicability engine (stack,
    /// fixpoint oracle, condensation index) funnels through this one
    /// function, so all of them agree on what a call requires by
    /// construction.
    pub fn site_candidates(
        &self,
        source: TypeId,
        site: &CallSite,
        scratch: &mut Vec<CallArg>,
    ) -> (Vec<MethodId>, Option<usize>) {
        match site.source_positions.len() {
            0 => (Vec::new(), None),
            1 => {
                let j = site.source_positions[0];
                scratch.clear();
                scratch.extend_from_slice(&site.args);
                scratch[j] = CallArg::Object(source);
                (self.applicable_methods(site.gf, scratch), Some(j))
            }
            _ => (self.applicable_methods(site.gf, &site.args), None),
        }
    }

    /// Per-type specificity ranks for one argument's CPL, with surrogate
    /// collapse: a surrogate type ranks **equal to its source** when the
    /// source also appears in the CPL.
    ///
    /// Rationale: factorization splits a type `Q` into `Q̂ + Q` whose
    /// combination is observationally the original `Q` (§5), and inserts
    /// `Q̂` immediately after `Q` in every CPL containing both. Ranking
    /// `Q̂` at `Q`'s position extends that transparency to method
    /// precedence — without it, rewriting an applicable method's
    /// specializer from `Q` to `Q̂` (§6.1) would demote it by one rank and
    /// could flip a tie it previously won at a later argument position,
    /// changing dispatch for pre-existing types. For derived types (whose
    /// CPLs contain only surrogates) the collapse is inert and positions
    /// rank as-is.
    pub(crate) fn collapsed_ranks(&self, cpl: &[TypeId]) -> Ranks {
        let mut ranks: Vec<(TypeId, usize)> = Vec::with_capacity(cpl.len());
        let mut next = 0usize;
        for &t in cpl {
            let collapsed = self
                .type_(t)
                .surrogate_source()
                .and_then(|src| ranks.iter().find(|&&(x, _)| x == src).map(|&(_, r)| r));
            match collapsed {
                Some(r) => ranks.push((t, r)),
                None => {
                    ranks.push((t, next));
                    next += 1;
                }
            }
        }
        ranks
    }

    /// Ranks an already-computed applicable set by left-to-right argument
    /// CPL comparison. `ranks_of` supplies the per-type collapsed rank
    /// table — the cached path shares memoized tables, the uncached path
    /// recomputes them — so both paths rank identically by construction.
    pub(crate) fn rank_methods(
        &self,
        applicable: Vec<MethodId>,
        args: &[CallArg],
        mut ranks_of: impl FnMut(&Schema, TypeId) -> Result<Arc<Ranks>>,
    ) -> Result<Vec<MethodId>> {
        if applicable.len() <= 1 {
            return Ok(applicable);
        }
        // Collapsed rank tables of the object-typed argument positions.
        let mut cpls: Vec<Option<Arc<Ranks>>> = Vec::with_capacity(args.len());
        for &a in args {
            cpls.push(match a {
                CallArg::Object(t) => Some(ranks_of(self, t)?),
                CallArg::Prim(_) | CallArg::Null => None,
            });
        }
        let rank_vec = |m: MethodId| -> Vec<usize> {
            self.method(m)
                .specializers
                .iter()
                .enumerate()
                .map(|(i, spec)| match (spec, &cpls[i]) {
                    (Specializer::Type(s), Some(ranks)) => ranks
                        .iter()
                        .find(|&&(x, _)| x == *s)
                        .map(|&(_, r)| r)
                        .expect("applicable method specializer must appear in argument CPL"),
                    _ => 0,
                })
                .collect()
        };
        let mut keyed: Vec<(Vec<usize>, MethodId)> =
            applicable.into_iter().map(|m| (rank_vec(m), m)).collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(keyed.into_iter().map(|(_, m)| m).collect())
    }

    /// The specificity vector `rank_applicable` orders a method by: one
    /// collapsed-CPL rank per argument position (0 = most specific;
    /// prim/null positions always rank 0). `m` must be applicable to the
    /// call. Exposed for the lint analyzer, which needs *pointwise*
    /// comparison rather than the lexicographic order dispatch uses: a
    /// call has an unambiguous winner only when some applicable method's
    /// vector is pointwise ≤ every other's.
    pub fn specificity_vector(&self, m: MethodId, args: &[CallArg]) -> Result<Vec<usize>> {
        if m.index() >= self.n_methods() {
            return Err(crate::error::ModelError::BadMethodId(m));
        }
        let method = self.method(m);
        let mut out = Vec::with_capacity(method.specializers.len());
        for (i, spec) in method.specializers.iter().enumerate() {
            let rank = match (spec, args.get(i)) {
                (Specializer::Type(s), Some(CallArg::Object(t))) => {
                    let ranks = self.cached_ranks(*t)?;
                    ranks
                        .iter()
                        .find(|&&(x, _)| x == *s)
                        .map(|&(_, r)| r)
                        .ok_or(crate::error::ModelError::BadTypeId(*s))?
                }
                _ => 0,
            };
            out.push(rank);
        }
        Ok(out)
    }

    /// The methods of `gf` applicable to the call, ranked most-specific
    /// first by left-to-right argument CPL comparison (with surrogate
    /// collapse — see `Schema::collapsed_ranks`'s source). Ties keep
    /// definition order. Served from the dispatch cache.
    pub fn rank_applicable(&self, gf: GfId, args: &[CallArg]) -> Result<Vec<MethodId>> {
        Ok(self.cached_ranked(gf, args)?.as_ref().clone())
    }

    /// [`Schema::rank_applicable`] bypassing the dispatch cache entirely
    /// (CPLs and rank tables are recomputed from the hierarchy). Kept
    /// public so the cached-vs-uncached equivalence property tests and
    /// the benchmarks have a ground truth to compare against.
    pub fn rank_applicable_uncached(&self, gf: GfId, args: &[CallArg]) -> Result<Vec<MethodId>> {
        let applicable = self.applicable_methods_uncached(gf, args);
        self.rank_methods(applicable, args, |s, t| {
            Ok(Arc::new(s.collapsed_ranks(&s.compute_cpl(t)?)))
        })
    }

    /// The most specific applicable method for the call, if any. Served
    /// from the dispatch cache.
    pub fn most_specific(&self, gf: GfId, args: &[CallArg]) -> Result<Option<MethodId>> {
        Ok(self.cached_ranked(gf, args)?.first().copied())
    }

    /// [`Schema::most_specific`] bypassing the dispatch cache entirely.
    pub fn most_specific_uncached(&self, gf: GfId, args: &[CallArg]) -> Result<Option<MethodId>> {
        Ok(self.rank_applicable_uncached(gf, args)?.into_iter().next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ValueType;
    use crate::methods::MethodKind;

    /// B <= A; gf `f` with methods on A and B; gf `g2(A,A)` multi-method.
    struct Fix {
        s: Schema,
        a: TypeId,
        b: TypeId,
        f: GfId,
        f_a: MethodId,
        f_b: MethodId,
    }

    fn fix() -> Fix {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let f_a = s
            .add_method(
                f,
                "f_a",
                vec![Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let f_b = s
            .add_method(
                f,
                "f_b",
                vec![Specializer::Type(b)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        Fix {
            s,
            a,
            b,
            f,
            f_a,
            f_b,
        }
    }

    #[test]
    fn applicable_to_type_uses_any_position() {
        let Fix {
            s, a, b, f_a, f_b, ..
        } = fix();
        assert!(s.method_applicable_to_type(f_a, b)); // b <= a
        assert!(s.method_applicable_to_type(f_b, b));
        assert!(s.method_applicable_to_type(f_a, a));
        assert!(!s.method_applicable_to_type(f_b, a)); // a is not <= b
    }

    #[test]
    fn call_applicability_and_ranking() {
        let Fix {
            s,
            a,
            b,
            f,
            f_a,
            f_b,
        } = fix();
        let on_b = [CallArg::Object(b)];
        assert_eq!(s.applicable_methods(f, &on_b), vec![f_a, f_b]);
        assert_eq!(s.rank_applicable(f, &on_b).unwrap(), vec![f_b, f_a]);
        assert_eq!(s.most_specific(f, &on_b).unwrap(), Some(f_b));
        let on_a = [CallArg::Object(a)];
        assert_eq!(s.rank_applicable(f, &on_a).unwrap(), vec![f_a]);
        assert_eq!(s.most_specific(f, &on_a).unwrap(), Some(f_a));
    }

    #[test]
    fn multi_method_left_to_right_precedence() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let g = s.add_gf("g", 2, None).unwrap();
        // g1(B, A) vs g2(A, B): for call (B, B), left argument wins.
        let g1 = s
            .add_method(
                g,
                "g1",
                vec![Specializer::Type(b), Specializer::Type(a)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let g2 = s
            .add_method(
                g,
                "g2",
                vec![Specializer::Type(a), Specializer::Type(b)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let args = [CallArg::Object(b), CallArg::Object(b)];
        assert_eq!(s.rank_applicable(g, &args).unwrap(), vec![g1, g2]);
    }

    #[test]
    fn prim_and_null_args() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_accessors(x).unwrap();
        let set = s.gf_id("set_x").unwrap();
        let ok = [CallArg::Object(a), CallArg::Prim(PrimType::Int)];
        assert_eq!(s.applicable_methods(set, &ok).len(), 1);
        let bad_kind = [CallArg::Object(a), CallArg::Prim(PrimType::Str)];
        assert!(s.applicable_methods(set, &bad_kind).is_empty());
        let null_recv = [CallArg::Null, CallArg::Prim(PrimType::Int)];
        assert_eq!(s.applicable_methods(set, &null_recv).len(), 1);
    }

    #[test]
    fn wrong_arity_call_never_applicable() {
        let Fix { s, b, f_a, .. } = fix();
        assert!(!s.method_applicable_to_call(f_a, &[CallArg::Object(b), CallArg::Object(b)]));
        assert!(!s.method_applicable_to_call(f_a, &[]));
    }

    #[test]
    fn surrogate_insertion_preserves_most_specific() {
        // The transparency property factorization relies on: retargeting a
        // method from A to a fresh highest-precedence surrogate ^A does not
        // change dispatch for existing types.
        let Fix {
            mut s,
            a,
            b,
            f,
            f_a,
            f_b,
        } = fix();
        let hat = s.add_surrogate("^A", a).unwrap();
        s.add_super_highest(a, hat).unwrap();
        s.method_mut(f_a).specializers = vec![Specializer::Type(hat)];
        assert_eq!(
            s.most_specific(f, &[CallArg::Object(b)]).unwrap(),
            Some(f_b)
        );
        assert_eq!(
            s.most_specific(f, &[CallArg::Object(a)]).unwrap(),
            Some(f_a)
        );
    }
}
