//! Structured lint diagnostics (`TDL…` codes) for schemas and projection
//! requests.
//!
//! Every check the analyzer performs — whether shallow well-formedness from
//! [`crate::Schema::validate_diagnostics`] or the deeper projection-safety
//! passes in td-core — reports through one vocabulary: a [`Diagnostic`]
//! carries a stable [`LintCode`], a [`Severity`], a human-readable message
//! and provenance [`Span`]s naming the offending types, attributes, generic
//! functions and methods. A [`LintReport`] aggregates diagnostics, renders
//! them as text or JSON, and decides the exit policy (`--deny warnings`).
//!
//! Severity tiers are part of the contract: facts about the paper's own
//! machinery (the §4 optimistic cycle assumption, §6.4 Augment pressure) are
//! *notes*; schema smells that make derivations surprising (dispatch
//! ambiguity, behavior-free projections) are *warnings*; anything that makes
//! the pipeline fail outright (precedence conflicts, malformed requests,
//! validation failures) is an *error*.

use std::fmt;

/// How serious a diagnostic is. Ordered: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: the derivation will succeed, but rests on an
    /// assumption or side effect worth knowing about.
    Note,
    /// Suspicious: the derivation will succeed but is likely not what the
    /// schema author intended. Fails `--deny warnings`.
    Warning,
    /// The pipeline will reject this schema or request.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint codes. `TDL0xx` are the analysis passes; `TDL1xx` are
/// well-formedness (validation) failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// TDL001 — an argument-type tuple has two maximal applicable methods
    /// and no most-specific winner (multi-method confusability, §3).
    DispatchAmbiguity,
    /// TDL002 — inconsistent class precedence list or broken surrogate
    /// precedence wiring; would violate invariant I2 (§2, §5).
    PrecedenceConflict,
    /// TDL003 — a method's applicability verdict rests on the §4 optimistic
    /// assumption about a call ring (call-graph SCC).
    OptimisticCycle,
    /// TDL004 — the requested projection derives a behavior-free type: no
    /// non-accessor method survives (§4).
    BehaviorFreeProjection,
    /// TDL005 — an assignment in a surviving method body forces `Augment` to
    /// create surrogates for types outside the projection closure (§6.4).
    AugmentHazard,
    /// TDL006 — the projection request itself is malformed: empty, or names
    /// attributes not available at the source type (§3.1).
    InvalidRequest,
    /// TDL100 — a dangling or duplicate identifier reference.
    InvalidReference,
    /// TDL101 — the type hierarchy contains a cycle (§2).
    HierarchyCycle,
    /// TDL102 — attribute ownership bookkeeping is inconsistent (§2.2).
    AttrOwnership,
    /// TDL103 — a method's signature disagrees with its generic function's
    /// arity (§3).
    MethodArity,
    /// TDL104 — an accessor method violates the accessor contract (§2.2).
    AccessorContract,
    /// TDL105 — a method body references parameters, variables or generic
    /// functions that do not exist (§6.3).
    BodyMalformed,
    /// TDL106 — two methods of one generic function share identical
    /// signatures (§3).
    DuplicateSignatures,
    /// TDL107 — a body assignment stores a value into a variable of an
    /// incompatible type (§6.3).
    AssignmentTypeError,
}

impl LintCode {
    /// The stable code string, e.g. `"TDL001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DispatchAmbiguity => "TDL001",
            LintCode::PrecedenceConflict => "TDL002",
            LintCode::OptimisticCycle => "TDL003",
            LintCode::BehaviorFreeProjection => "TDL004",
            LintCode::AugmentHazard => "TDL005",
            LintCode::InvalidRequest => "TDL006",
            LintCode::InvalidReference => "TDL100",
            LintCode::HierarchyCycle => "TDL101",
            LintCode::AttrOwnership => "TDL102",
            LintCode::MethodArity => "TDL103",
            LintCode::AccessorContract => "TDL104",
            LintCode::BodyMalformed => "TDL105",
            LintCode::DuplicateSignatures => "TDL106",
            LintCode::AssignmentTypeError => "TDL107",
        }
    }

    /// The section of the paper whose machinery this check enforces.
    pub fn paper_section(self) -> &'static str {
        match self {
            LintCode::DispatchAmbiguity => "§3",
            LintCode::PrecedenceConflict => "§2/I2",
            LintCode::OptimisticCycle => "§4.1",
            LintCode::BehaviorFreeProjection => "§4",
            LintCode::AugmentHazard => "§6.4",
            LintCode::InvalidRequest => "§3.1",
            LintCode::InvalidReference => "§2",
            LintCode::HierarchyCycle => "§2",
            LintCode::AttrOwnership => "§2.2",
            LintCode::MethodArity => "§3",
            LintCode::AccessorContract => "§2.2",
            LintCode::BodyMalformed => "§6.3",
            LintCode::DuplicateSignatures => "§3",
            LintCode::AssignmentTypeError => "§6.3",
        }
    }

    /// The default severity this code reports at.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::OptimisticCycle | LintCode::AugmentHazard => Severity::Note,
            LintCode::DispatchAmbiguity | LintCode::BehaviorFreeProjection => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What kind of schema entity a [`Span`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A type (or surrogate).
    Type,
    /// An attribute.
    Attr,
    /// A generic function.
    Gf,
    /// A method (named by its label).
    Method,
}

impl SpanKind {
    fn as_str(self) -> &'static str {
        match self {
            SpanKind::Type => "type",
            SpanKind::Attr => "attr",
            SpanKind::Gf => "gf",
            SpanKind::Method => "method",
        }
    }
}

/// Provenance: one named schema entity a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// The entity's kind.
    pub kind: SpanKind,
    /// The entity's name (type/attribute/gf name, or method label).
    pub name: String,
}

impl Span {
    /// A span naming a type.
    pub fn ty(name: impl Into<String>) -> Span {
        Span {
            kind: SpanKind::Type,
            name: name.into(),
        }
    }

    /// A span naming an attribute.
    pub fn attr(name: impl Into<String>) -> Span {
        Span {
            kind: SpanKind::Attr,
            name: name.into(),
        }
    }

    /// A span naming a generic function.
    pub fn gf(name: impl Into<String>) -> Span {
        Span {
            kind: SpanKind::Gf,
            name: name.into(),
        }
    }

    /// A span naming a method by its label.
    pub fn method(name: impl Into<String>) -> Span {
        Span {
            kind: SpanKind::Method,
            name: name.into(),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}`", self.kind.as_str(), self.name)
    }
}

/// One finding: a lint code, severity, message, and the entities involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: LintCode,
    /// Severity this instance reports at.
    pub severity: Severity,
    /// Human-readable description with entity names inlined.
    pub message: String,
    /// Entities the finding points at, most relevant first.
    pub spans: Vec<Span>,
}

impl Diagnostic {
    /// Builds a diagnostic at the code's default severity.
    pub fn new(code: LintCode, message: impl Into<String>, spans: Vec<Span>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            spans,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.spans.is_empty() {
            write!(f, " [")?;
            for (i, s) in self.spans.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics with rendering and exit policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// The findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// A report over the given findings.
    pub fn new(diagnostics: Vec<Diagnostic>) -> LintReport {
        LintReport { diagnostics }
    }

    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    /// Whether this report should fail the run. Errors always fail;
    /// warnings fail only under `deny_warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// Appends another report's findings to this one.
    pub fn extend(&mut self, other: &LintReport) {
        self.diagnostics.extend(other.diagnostics.iter().cloned());
    }

    /// Plain-text rendering: one line per finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} errors, {} warnings, {} notes\n",
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        out
    }

    /// JSON rendering (stable field order, no external dependencies).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"code\": \"{}\", ", d.code.as_str()));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity));
            out.push_str(&format!(
                "\"paper_section\": \"{}\", ",
                json_escape(d.code.paper_section())
            ));
            out.push_str(&format!("\"message\": \"{}\", ", json_escape(&d.message)));
            out.push_str("\"spans\": [");
            for (j, s) in d.spans.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"kind\": \"{}\", \"name\": \"{}\"}}",
                    s.kind.as_str(),
                    json_escape(&s.name)
                ));
            }
            out.push_str("]}");
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"notes\": {}\n}}\n",
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: LintCode) -> Diagnostic {
        Diagnostic::new(code, "msg", vec![Span::ty("A"), Span::method("x1")])
    }

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_are_stable_and_sectioned() {
        assert_eq!(LintCode::DispatchAmbiguity.as_str(), "TDL001");
        assert_eq!(LintCode::AugmentHazard.as_str(), "TDL005");
        assert_eq!(LintCode::AssignmentTypeError.as_str(), "TDL107");
        assert_eq!(LintCode::OptimisticCycle.paper_section(), "§4.1");
        assert_eq!(LintCode::OptimisticCycle.default_severity(), Severity::Note);
        assert_eq!(
            LintCode::PrecedenceConflict.default_severity(),
            Severity::Error
        );
    }

    #[test]
    fn report_counts_and_exit_policy() {
        let report = LintReport::new(vec![
            diag(LintCode::OptimisticCycle),
            diag(LintCode::DispatchAmbiguity),
        ]);
        assert_eq!(report.errors(), 0);
        assert_eq!(report.warnings(), 1);
        assert_eq!(report.notes(), 1);
        assert!(!report.fails(false));
        assert!(report.fails(true));

        let errs = LintReport::new(vec![diag(LintCode::PrecedenceConflict)]);
        assert!(errs.fails(false));
    }

    #[test]
    fn display_mentions_code_and_spans() {
        let d = diag(LintCode::DispatchAmbiguity);
        let s = d.to_string();
        assert!(s.contains("warning[TDL001]"), "{s}");
        assert!(s.contains("type `A`"), "{s}");
        assert!(s.contains("method `x1`"), "{s}");
    }

    #[test]
    fn json_is_escaped_and_counts_match() {
        let mut d = diag(LintCode::InvalidRequest);
        d.message = "bad \"quote\"\nline".into();
        let report = LintReport::new(vec![d]);
        let json = report.render_json();
        assert!(json.contains("\\\"quote\\\"\\nline"), "{json}");
        assert!(json.contains("\"errors\": 1"), "{json}");
        assert!(json.contains("\"paper_section\""), "{json}");
    }

    #[test]
    fn empty_report_renders() {
        let r = LintReport::default();
        assert!(r.is_empty());
        assert!(r.render_json().contains("\"errors\": 0"));
        assert!(r.render_text().contains("0 errors"));
    }
}
