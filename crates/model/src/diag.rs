//! Structured lint diagnostics (`TDL…` codes) for schemas and projection
//! requests.
//!
//! Every check the analyzer performs — whether shallow well-formedness from
//! [`crate::Schema::validate_diagnostics`] or the deeper projection-safety
//! passes in td-core — reports through one vocabulary: a [`Diagnostic`]
//! carries a stable [`LintCode`], a [`Severity`], a human-readable message
//! and provenance [`Span`]s naming the offending types, attributes, generic
//! functions and methods. A [`LintReport`] aggregates diagnostics, renders
//! them as text or JSON, and decides the exit policy (`--deny warnings`).
//!
//! Severity tiers are part of the contract: facts about the paper's own
//! machinery (the §4 optimistic cycle assumption, §6.4 Augment pressure) are
//! *notes*; schema smells that make derivations surprising (dispatch
//! ambiguity, behavior-free projections) are *warnings*; anything that makes
//! the pipeline fail outright (precedence conflicts, malformed requests,
//! validation failures) is an *error*.

use std::fmt;

/// How serious a diagnostic is. Ordered: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: the derivation will succeed, but rests on an
    /// assumption or side effect worth knowing about.
    Note,
    /// Suspicious: the derivation will succeed but is likely not what the
    /// schema author intended. Fails `--deny warnings`.
    Warning,
    /// The pipeline will reject this schema or request.
    Error,
}

impl Severity {
    /// Parses the rendered name (which doubles as the SARIF `level`
    /// string — the two vocabularies coincide).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint codes. `TDL0xx` are the analysis passes; `TDL1xx` are
/// well-formedness (validation) failures; `TDL2xx` are the deep
/// interprocedural analyses (td-analyze) — they are only emitted by
/// `tdv analyze`, never by the plain lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// TDL001 — an argument-type tuple has two maximal applicable methods
    /// and no most-specific winner (multi-method confusability, §3).
    DispatchAmbiguity,
    /// TDL002 — inconsistent class precedence list or broken surrogate
    /// precedence wiring; would violate invariant I2 (§2, §5).
    PrecedenceConflict,
    /// TDL003 — a method's applicability verdict rests on the §4 optimistic
    /// assumption about a call ring (call-graph SCC).
    OptimisticCycle,
    /// TDL004 — the requested projection derives a behavior-free type: no
    /// non-accessor method survives (§4).
    BehaviorFreeProjection,
    /// TDL005 — an assignment in a surviving method body forces `Augment` to
    /// create surrogates for types outside the projection closure (§6.4).
    AugmentHazard,
    /// TDL006 — the projection request itself is malformed: empty, or names
    /// attributes not available at the source type (§3.1).
    InvalidRequest,
    /// TDL100 — a dangling or duplicate identifier reference.
    InvalidReference,
    /// TDL101 — the type hierarchy contains a cycle (§2).
    HierarchyCycle,
    /// TDL102 — attribute ownership bookkeeping is inconsistent (§2.2).
    AttrOwnership,
    /// TDL103 — a method's signature disagrees with its generic function's
    /// arity (§3).
    MethodArity,
    /// TDL104 — an accessor method violates the accessor contract (§2.2).
    AccessorContract,
    /// TDL105 — a method body references parameters, variables or generic
    /// functions that do not exist (§6.3).
    BodyMalformed,
    /// TDL106 — two methods of one generic function share identical
    /// signatures (§3).
    DuplicateSignatures,
    /// TDL107 — a body assignment stores a value into a variable of an
    /// incompatible type (§6.3).
    AssignmentTypeError,
    /// TDL201 — a call site passes an argument that is provably `Null` on
    /// every path, so dispatch on a type specializer is guaranteed to
    /// fail at runtime (§3; nullability propagation).
    NullArgDispatch,
    /// TDL202 — a branch condition is a compile-time constant, leaving
    /// statements (and any `Augment` pressure they carry) unreachable
    /// (§6.4; constant propagation).
    ConstantBranch,
    /// TDL203 — an applicable method is shadowed by a more specific one
    /// at every entry and unreachable through any surviving call chain
    /// under the projection (§4; reachability).
    UnreachableMethod,
    /// TDL204 — a projected attribute is never read by any surviving
    /// non-accessor method: a semantic sharpening of the §4 load-bearing
    /// set (liveness).
    DeadAttribute,
    /// TDL205 — an interprocedural def-use chain forces `Augment` to
    /// surrogate types outside the projection closure across a call
    /// boundary — the §6.4 check generalized beyond one body.
    InterprocAugment,
}

impl LintCode {
    /// The stable code string, e.g. `"TDL001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DispatchAmbiguity => "TDL001",
            LintCode::PrecedenceConflict => "TDL002",
            LintCode::OptimisticCycle => "TDL003",
            LintCode::BehaviorFreeProjection => "TDL004",
            LintCode::AugmentHazard => "TDL005",
            LintCode::InvalidRequest => "TDL006",
            LintCode::InvalidReference => "TDL100",
            LintCode::HierarchyCycle => "TDL101",
            LintCode::AttrOwnership => "TDL102",
            LintCode::MethodArity => "TDL103",
            LintCode::AccessorContract => "TDL104",
            LintCode::BodyMalformed => "TDL105",
            LintCode::DuplicateSignatures => "TDL106",
            LintCode::AssignmentTypeError => "TDL107",
            LintCode::NullArgDispatch => "TDL201",
            LintCode::ConstantBranch => "TDL202",
            LintCode::UnreachableMethod => "TDL203",
            LintCode::DeadAttribute => "TDL204",
            LintCode::InterprocAugment => "TDL205",
        }
    }

    /// The inverse of [`LintCode::as_str`]: resolves a stable code
    /// string. Used by the SARIF importer.
    pub fn parse(code: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.as_str() == code)
    }

    /// Every code, in code order.
    pub const ALL: &'static [LintCode] = &[
        LintCode::DispatchAmbiguity,
        LintCode::PrecedenceConflict,
        LintCode::OptimisticCycle,
        LintCode::BehaviorFreeProjection,
        LintCode::AugmentHazard,
        LintCode::InvalidRequest,
        LintCode::InvalidReference,
        LintCode::HierarchyCycle,
        LintCode::AttrOwnership,
        LintCode::MethodArity,
        LintCode::AccessorContract,
        LintCode::BodyMalformed,
        LintCode::DuplicateSignatures,
        LintCode::AssignmentTypeError,
        LintCode::NullArgDispatch,
        LintCode::ConstantBranch,
        LintCode::UnreachableMethod,
        LintCode::DeadAttribute,
        LintCode::InterprocAugment,
    ];

    /// One-line rule description for machine-readable exports (SARIF
    /// `shortDescription`).
    pub fn short_description(self) -> &'static str {
        match self {
            LintCode::DispatchAmbiguity => "argument tuple has no most-specific applicable method",
            LintCode::PrecedenceConflict => "inconsistent class precedence list",
            LintCode::OptimisticCycle => "applicability rests on the optimistic cycle assumption",
            LintCode::BehaviorFreeProjection => "projection derives a behavior-free type",
            LintCode::AugmentHazard => "assignment forces Augment to surrogate external types",
            LintCode::InvalidRequest => "malformed projection request",
            LintCode::InvalidReference => "dangling or duplicate identifier reference",
            LintCode::HierarchyCycle => "type hierarchy contains a cycle",
            LintCode::AttrOwnership => "inconsistent attribute ownership",
            LintCode::MethodArity => "method arity disagrees with its generic function",
            LintCode::AccessorContract => "accessor method violates the accessor contract",
            LintCode::BodyMalformed => "method body references unknown entities",
            LintCode::DuplicateSignatures => "two methods share identical signatures",
            LintCode::AssignmentTypeError => "assignment stores an incompatible value type",
            LintCode::NullArgDispatch => "argument is provably Null: dispatch cannot succeed",
            LintCode::ConstantBranch => "branch condition is constant: dead statements",
            LintCode::UnreachableMethod => "method shadowed and unreachable under the projection",
            LintCode::DeadAttribute => "attribute never read on any surviving path",
            LintCode::InterprocAugment => "interprocedural def-use chain forces Augment surrogates",
        }
    }

    /// The section of the paper whose machinery this check enforces.
    pub fn paper_section(self) -> &'static str {
        match self {
            LintCode::DispatchAmbiguity => "§3",
            LintCode::PrecedenceConflict => "§2/I2",
            LintCode::OptimisticCycle => "§4.1",
            LintCode::BehaviorFreeProjection => "§4",
            LintCode::AugmentHazard => "§6.4",
            LintCode::InvalidRequest => "§3.1",
            LintCode::InvalidReference => "§2",
            LintCode::HierarchyCycle => "§2",
            LintCode::AttrOwnership => "§2.2",
            LintCode::MethodArity => "§3",
            LintCode::AccessorContract => "§2.2",
            LintCode::BodyMalformed => "§6.3",
            LintCode::DuplicateSignatures => "§3",
            LintCode::AssignmentTypeError => "§6.3",
            LintCode::NullArgDispatch => "§3",
            LintCode::ConstantBranch => "§6.4",
            LintCode::UnreachableMethod => "§4",
            LintCode::DeadAttribute => "§4",
            LintCode::InterprocAugment => "§6.4",
        }
    }

    /// The default severity this code reports at.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::OptimisticCycle
            | LintCode::AugmentHazard
            | LintCode::DeadAttribute
            | LintCode::InterprocAugment => Severity::Note,
            LintCode::DispatchAmbiguity
            | LintCode::BehaviorFreeProjection
            | LintCode::NullArgDispatch
            | LintCode::ConstantBranch
            | LintCode::UnreachableMethod => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What kind of schema entity a [`Span`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A type (or surrogate).
    Type,
    /// An attribute.
    Attr,
    /// A generic function.
    Gf,
    /// A method (named by its label).
    Method,
}

impl SpanKind {
    fn as_str(self) -> &'static str {
        match self {
            SpanKind::Type => "type",
            SpanKind::Attr => "attr",
            SpanKind::Gf => "gf",
            SpanKind::Method => "method",
        }
    }

    fn parse(s: &str) -> Option<SpanKind> {
        match s {
            "type" => Some(SpanKind::Type),
            "attr" => Some(SpanKind::Attr),
            "gf" => Some(SpanKind::Gf),
            "method" => Some(SpanKind::Method),
            _ => None,
        }
    }
}

/// Provenance: one named schema entity a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// The entity's kind.
    pub kind: SpanKind,
    /// The entity's name (type/attribute/gf name, or method label).
    pub name: String,
}

impl Span {
    /// A span naming a type.
    pub fn ty(name: impl Into<String>) -> Span {
        Span {
            kind: SpanKind::Type,
            name: name.into(),
        }
    }

    /// A span naming an attribute.
    pub fn attr(name: impl Into<String>) -> Span {
        Span {
            kind: SpanKind::Attr,
            name: name.into(),
        }
    }

    /// A span naming a generic function.
    pub fn gf(name: impl Into<String>) -> Span {
        Span {
            kind: SpanKind::Gf,
            name: name.into(),
        }
    }

    /// A span naming a method by its label.
    pub fn method(name: impl Into<String>) -> Span {
        Span {
            kind: SpanKind::Method,
            name: name.into(),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}`", self.kind.as_str(), self.name)
    }
}

/// One finding: a lint code, severity, message, and the entities involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: LintCode,
    /// Severity this instance reports at.
    pub severity: Severity,
    /// Human-readable description with entity names inlined.
    pub message: String,
    /// Entities the finding points at, most relevant first.
    pub spans: Vec<Span>,
}

impl Diagnostic {
    /// Builds a diagnostic at the code's default severity.
    pub fn new(code: LintCode, message: impl Into<String>, spans: Vec<Span>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            spans,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.spans.is_empty() {
            write!(f, " [")?;
            for (i, s) in self.spans.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics with rendering and exit policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// The findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// A report over the given findings.
    pub fn new(diagnostics: Vec<Diagnostic>) -> LintReport {
        LintReport { diagnostics }
    }

    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    /// Whether this report should fail the run. Errors always fail;
    /// warnings fail only under `deny_warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// Appends another report's findings to this one.
    pub fn extend(&mut self, other: &LintReport) {
        self.diagnostics.extend(other.diagnostics.iter().cloned());
    }

    /// Plain-text rendering: one line per finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} errors, {} warnings, {} notes\n",
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        out
    }

    /// JSON rendering (stable field order, no external dependencies).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"code\": \"{}\", ", d.code.as_str()));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity));
            out.push_str(&format!(
                "\"paper_section\": \"{}\", ",
                json_escape(d.code.paper_section())
            ));
            out.push_str(&format!("\"message\": \"{}\", ", json_escape(&d.message)));
            out.push_str("\"spans\": [");
            for (j, s) in d.spans.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"kind\": \"{}\", \"name\": \"{}\"}}",
                    s.kind.as_str(),
                    json_escape(&s.name)
                ));
            }
            out.push_str("]}");
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"notes\": {}\n}}\n",
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        out
    }

    /// SARIF 2.1.0 rendering (hand-rolled, dependency-free): one run,
    /// one result per diagnostic, spans as logical locations. Severity
    /// maps 1:1 onto the SARIF `level` vocabulary, so the export loses
    /// nothing — [`LintReport::from_sarif`] reconstructs the report
    /// exactly (round-trip tested).
    pub fn render_sarif(&self, tool_name: &str) -> String {
        // Rules metadata: each distinct code, in first-appearance order.
        let mut rules: Vec<LintCode> = Vec::new();
        for d in &self.diagnostics {
            if !rules.contains(&d.code) {
                rules.push(d.code);
            }
        }
        let mut out = String::from("{\n");
        out.push_str(
            "  \"$schema\": \"https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json\",\n",
        );
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str("  \"runs\": [\n    {\n");
        out.push_str("      \"tool\": {\n        \"driver\": {\n");
        out.push_str(&format!(
            "          \"name\": \"{}\",\n",
            json_escape(tool_name)
        ));
        out.push_str("          \"rules\": [");
        for (i, code) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n            {{\"id\": \"{}\", \
                 \"shortDescription\": {{\"text\": \"{}\"}}, \
                 \"defaultConfiguration\": {{\"level\": \"{}\"}}, \
                 \"properties\": {{\"paperSection\": \"{}\"}}}}",
                code.as_str(),
                json_escape(code.short_description()),
                code.default_severity(),
                json_escape(code.paper_section())
            ));
        }
        if !rules.is_empty() {
            out.push_str("\n          ");
        }
        out.push_str("]\n        }\n      },\n");
        out.push_str("      \"results\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"ruleId\": \"{}\", \"level\": \"{}\", \
                 \"message\": {{\"text\": \"{}\"}}, \"locations\": [",
                d.code.as_str(),
                d.severity,
                json_escape(&d.message)
            ));
            if !d.spans.is_empty() {
                out.push_str("{\"logicalLocations\": [");
                for (j, s) in d.spans.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"kind\": \"{}\", \"name\": \"{}\"}}",
                        s.kind.as_str(),
                        json_escape(&s.name)
                    ));
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }

    /// Reconstructs a report from SARIF produced by
    /// [`LintReport::render_sarif`] (or any SARIF 2.1.0 document using
    /// the `TDL…` rule ids and logical locations). Unknown rule ids or
    /// malformed structure are errors, not silently dropped findings.
    pub fn from_sarif(text: &str) -> Result<LintReport, String> {
        let doc = sarif_json::parse(text)?;
        let runs = doc
            .get("runs")
            .and_then(|r| r.as_arr())
            .ok_or("missing `runs` array")?;
        let mut diagnostics = Vec::new();
        for run in runs {
            let results = run
                .get("results")
                .and_then(|r| r.as_arr())
                .ok_or("run missing `results` array")?;
            for res in results {
                let rule_id = res
                    .get("ruleId")
                    .and_then(|v| v.as_str())
                    .ok_or("result missing `ruleId`")?;
                let code = LintCode::parse(rule_id)
                    .ok_or_else(|| format!("unknown rule id `{rule_id}`"))?;
                let severity = match res.get("level").and_then(|v| v.as_str()) {
                    Some(level) => {
                        Severity::parse(level).ok_or_else(|| format!("unknown level `{level}`"))?
                    }
                    None => code.default_severity(),
                };
                let message = res
                    .get("message")
                    .and_then(|m| m.get("text"))
                    .and_then(|t| t.as_str())
                    .ok_or("result missing `message.text`")?
                    .to_string();
                let mut spans = Vec::new();
                if let Some(locations) = res.get("locations").and_then(|l| l.as_arr()) {
                    for loc in locations {
                        let logical = loc
                            .get("logicalLocations")
                            .and_then(|l| l.as_arr())
                            .ok_or("location missing `logicalLocations`")?;
                        for ll in logical {
                            let kind = ll
                                .get("kind")
                                .and_then(|k| k.as_str())
                                .and_then(SpanKind::parse)
                                .ok_or("logical location with unknown `kind`")?;
                            let name = ll
                                .get("name")
                                .and_then(|n| n.as_str())
                                .ok_or("logical location missing `name`")?;
                            spans.push(Span {
                                kind,
                                name: name.to_string(),
                            });
                        }
                    }
                }
                diagnostics.push(Diagnostic {
                    code,
                    severity,
                    message,
                    spans,
                });
            }
        }
        Ok(LintReport::new(diagnostics))
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

/// Just enough JSON parsing for the SARIF importer. Hand-rolled for the
/// same reason every other crate in the workspace hand-rolls its JSON
/// (no crates registry in the build environment); td-server's parser
/// can't be reused here because the dependency arrow points the other
/// way.
mod sarif_json {
    /// A parsed JSON value, trimmed to what the importer reads.
    pub(super) enum Value {
        Null,
        Bool(#[allow(dead_code)] bool),
        Num(#[allow(dead_code)] f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub(super) fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub(super) fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    pub(super) fn parse(src: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                pairs.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                        let c = s.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: LintCode) -> Diagnostic {
        Diagnostic::new(code, "msg", vec![Span::ty("A"), Span::method("x1")])
    }

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_are_stable_and_sectioned() {
        assert_eq!(LintCode::DispatchAmbiguity.as_str(), "TDL001");
        assert_eq!(LintCode::AugmentHazard.as_str(), "TDL005");
        assert_eq!(LintCode::AssignmentTypeError.as_str(), "TDL107");
        assert_eq!(LintCode::OptimisticCycle.paper_section(), "§4.1");
        assert_eq!(LintCode::OptimisticCycle.default_severity(), Severity::Note);
        assert_eq!(
            LintCode::PrecedenceConflict.default_severity(),
            Severity::Error
        );
    }

    #[test]
    fn report_counts_and_exit_policy() {
        let report = LintReport::new(vec![
            diag(LintCode::OptimisticCycle),
            diag(LintCode::DispatchAmbiguity),
        ]);
        assert_eq!(report.errors(), 0);
        assert_eq!(report.warnings(), 1);
        assert_eq!(report.notes(), 1);
        assert!(!report.fails(false));
        assert!(report.fails(true));

        let errs = LintReport::new(vec![diag(LintCode::PrecedenceConflict)]);
        assert!(errs.fails(false));
    }

    #[test]
    fn display_mentions_code_and_spans() {
        let d = diag(LintCode::DispatchAmbiguity);
        let s = d.to_string();
        assert!(s.contains("warning[TDL001]"), "{s}");
        assert!(s.contains("type `A`"), "{s}");
        assert!(s.contains("method `x1`"), "{s}");
    }

    #[test]
    fn json_is_escaped_and_counts_match() {
        let mut d = diag(LintCode::InvalidRequest);
        d.message = "bad \"quote\"\nline".into();
        let report = LintReport::new(vec![d]);
        let json = report.render_json();
        assert!(json.contains("\\\"quote\\\"\\nline"), "{json}");
        assert!(json.contains("\"errors\": 1"), "{json}");
        assert!(json.contains("\"paper_section\""), "{json}");
    }

    #[test]
    fn empty_report_renders() {
        let r = LintReport::default();
        assert!(r.is_empty());
        assert!(r.render_json().contains("\"errors\": 0"));
        assert!(r.render_text().contains("0 errors"));
    }

    #[test]
    fn analysis_codes_are_stable() {
        assert_eq!(LintCode::NullArgDispatch.as_str(), "TDL201");
        assert_eq!(LintCode::ConstantBranch.as_str(), "TDL202");
        assert_eq!(LintCode::UnreachableMethod.as_str(), "TDL203");
        assert_eq!(LintCode::DeadAttribute.as_str(), "TDL204");
        assert_eq!(LintCode::InterprocAugment.as_str(), "TDL205");
        assert_eq!(
            LintCode::NullArgDispatch.default_severity(),
            Severity::Warning
        );
        assert_eq!(LintCode::DeadAttribute.default_severity(), Severity::Note);
        // parse() inverts as_str() over the whole vocabulary.
        for &code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(LintCode::parse("TDL999"), None);
    }

    #[test]
    fn sarif_round_trips_exactly() {
        let mut custom = diag(LintCode::OptimisticCycle);
        custom.severity = Severity::Warning; // non-default severity survives
        custom.message = "ring {x1, y1} \"quoted\"\nline".into();
        let report = LintReport::new(vec![
            diag(LintCode::DispatchAmbiguity),
            diag(LintCode::NullArgDispatch),
            custom,
            Diagnostic::new(LintCode::DeadAttribute, "no spans", vec![]),
        ]);
        let sarif = report.render_sarif("tdv");
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"ruleId\": \"TDL201\""), "{sarif}");
        assert!(sarif.contains("\"paperSection\""), "{sarif}");
        let back = LintReport::from_sarif(&sarif).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn sarif_empty_report_round_trips() {
        let report = LintReport::default();
        let sarif = report.render_sarif("tdv");
        assert!(sarif.contains("\"results\": []"), "{sarif}");
        assert_eq!(LintReport::from_sarif(&sarif).unwrap(), report);
    }

    #[test]
    fn sarif_import_rejects_unknown_rules_and_garbage() {
        assert!(LintReport::from_sarif("{not json").is_err());
        assert!(LintReport::from_sarif("{}").is_err());
        let bogus = r#"{"runs": [{"results": [{"ruleId": "XXX9", "message": {"text": "m"}}]}]}"#;
        assert!(LintReport::from_sarif(bogus).unwrap_err().contains("XXX9"));
    }

    #[test]
    fn sarif_level_defaults_from_rule_when_absent() {
        let doc = r#"{"runs": [{"results": [
            {"ruleId": "TDL001", "message": {"text": "m"}, "locations": []}
        ]}]}"#;
        let report = LintReport::from_sarif(doc).unwrap();
        assert_eq!(report.diagnostics[0].severity, Severity::Warning);
    }
}
