//! A guided replay of every worked example in the paper, with the
//! `IsApplicable` trace narrated the way §4.2 narrates it.
//!
//! ```sh
//! cargo run --example paper_walkthrough
//! ```

use typederive::derive::{project_named, ProjectionOptions, TraceEvent};
use typederive::model::Schema;
use typederive::workload::figures;

fn label(s: &Schema, m: typederive::model::MethodId) -> &str {
    s.method_label(m)
}

fn main() {
    println!("##### Figure 3: the original eight-type hierarchy #####\n");
    let mut s = figures::fig3_with_z1();
    println!("{}", s.render_hierarchy());
    println!("methods:\n{}", s.render_methods());

    println!("##### Example 1: IsApplicable for Π_{{a2,e2,h2}}(A) #####\n");
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions {
            record_trace: true,
            ..Default::default()
        },
    )
    .expect("the paper's projection");

    for event in &d.applicability.trace {
        match event {
            TraceEvent::Begin { method } => {
                println!("testing {} …", label(&s, *method));
            }
            TraceEvent::AccessorCheck {
                method,
                in_projection,
                ..
            } => {
                println!(
                    "  accessor {} — attribute {} the projection list",
                    label(&s, *method),
                    if *in_projection { "IS in" } else { "is NOT in" }
                );
            }
            TraceEvent::CycleAssumed { method, dependents } => {
                println!(
                    "  {} is already on the MethodStack: optimistically assumed applicable (dependents: {})",
                    label(&s, *method),
                    dependents
                        .iter()
                        .map(|&m| label(&s, m))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            TraceEvent::CallExamined {
                method,
                gf,
                candidates,
                substituted_at,
            } => {
                println!(
                    "  {}: call {}(…) — candidates {{{}}}{}",
                    label(&s, *method),
                    s.gf(*gf).name,
                    candidates
                        .iter()
                        .map(|&m| label(&s, m))
                        .collect::<Vec<_>>()
                        .join(", "),
                    match substituted_at {
                        Some(j) => format!(" (source type substituted at argument {j})"),
                        None => String::new(),
                    }
                );
            }
            TraceEvent::CallFailed { method, gf } => {
                println!(
                    "  {}: no applicable method for the call to {} — fails",
                    label(&s, *method),
                    s.gf(*gf).name
                );
            }
            TraceEvent::Classified { method, applicable } => {
                println!(
                    "  => {} is {}",
                    label(&s, *method),
                    if *applicable {
                        "APPLICABLE"
                    } else {
                        "not applicable"
                    }
                );
            }
            TraceEvent::DependentsRetracted { failed, removed } => {
                println!(
                    "  !! {} failed: retracting optimistic dependents {{{}}}",
                    label(&s, *failed),
                    removed
                        .iter()
                        .map(|&m| label(&s, m))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            TraceEvent::Recheck { method } => {
                println!("re-checking {} …", label(&s, *method));
            }
        }
    }

    println!(
        "\nApplicable     = {:?}",
        d.applicable()
            .iter()
            .map(|&m| label(&s, m))
            .collect::<Vec<_>>()
    );
    println!(
        "NotApplicable  = {:?}",
        d.not_applicable()
            .iter()
            .map(|&m| label(&s, m))
            .collect::<Vec<_>>()
    );
    println!("(paper says: applicable = {:?})", figures::EX1_APPLICABLE);

    println!("\n##### Figure 4/5: the refactored + augmented hierarchy #####\n");
    println!("{}", s.render_hierarchy());
    println!(
        "Z (types needing augmentation) = {:?}",
        d.z_types
            .iter()
            .map(|&t| s.type_name(t))
            .collect::<Vec<_>>()
    );
    println!(
        "surrogates: {} from FactorState, {} from Augment",
        d.factor_surrogates.len(),
        d.augment_surrogates.len()
    );

    println!("\n##### Example 3: factored signatures #####\n");
    for &m in d.applicable() {
        println!("  {}", s.render_signature(m));
    }
    println!("(paper says: {:?})", figures::EX3_SIGNATURES);

    println!("\n##### Example 4: re-typed body of z1 #####\n");
    let z1 = s.method_by_label("z1").expect("z1 defined");
    println!("  signature: {}", s.render_signature(z1));
    for local in &s.method(z1).body().expect("general method").locals {
        println!("  local {}: {}", local.name, local.ty);
    }
    println!(
        "  invariants: {}",
        if d.invariants_ok() {
            "all hold ✓"
        } else {
            "VIOLATED"
        }
    );
}
