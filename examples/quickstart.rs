//! Quickstart: derive a view type by projection and watch behavior
//! follow the state.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use typederive::prelude::*;

fn main() {
    // The paper's Figure 1 schema: Employee <= Person, with methods
    //   age(Person)      — reads date_of_birth
    //   income(Employee) — reads pay_rate and hrs_worked
    //   promote(Employee)— reads date_of_birth and pay_rate
    let mut db = Database::new(typederive::workload::fig1());
    println!(
        "== original hierarchy ==\n{}",
        db.schema().render_hierarchy()
    );

    let alice = db
        .create_named(
            "Employee",
            &[
                ("SSN", Value::Int(12345)),
                ("name", Value::Str("Alice".into())),
                ("date_of_birth", Value::Int(1990)),
                ("pay_rate", Value::Float(55.0)),
                ("hrs_worked", Value::Float(38.0)),
            ],
        )
        .expect("well-typed employee");

    // Derive the §3.1 badge view: Π_{SSN, date_of_birth, pay_rate}(Employee).
    let badge = project_named(
        db.schema_mut(),
        "Employee",
        &["SSN", "date_of_birth", "pay_rate"],
        &ProjectionOptions::default(),
    )
    .expect("projection over available attributes");

    println!("== derivation ==\n{}", badge.summary(db.schema()));
    println!(
        "== refactored hierarchy ==\n{}",
        db.schema().render_hierarchy()
    );

    // Materialize the view extent and call methods on a view object.
    let view = MaterializedView::materialize(&mut db, &badge).expect("materialize");
    let v = view.view_of(alice).expect("alice was projected");

    let age = db
        .call_named("age", &[Value::Ref(v)])
        .expect("age survives");
    let promote = db
        .call_named("promote", &[Value::Ref(v)])
        .expect("promote survives");
    println!("view object {v}: age = {age}, promote = {promote}");

    let income_on_view = db.call_named("income", &[Value::Ref(v)]);
    println!(
        "income on the view is rejected: {}",
        income_on_view.unwrap_err()
    );

    // The original employee is untouched.
    let income = db
        .call_named("income", &[Value::Ref(alice)])
        .expect("original behavior preserved");
    println!("original {alice}: income = {income}");

    assert!(badge.invariants_ok(), "all preservation invariants hold");
    println!("all invariants machine-checked ✓");
}
