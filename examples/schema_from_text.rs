//! Define a schema in the text DSL, derive a view, explain a verdict and
//! export the refactored hierarchy as Graphviz DOT.
//!
//! ```sh
//! cargo run --example schema_from_text
//! ```

use typederive::derive::{explain, project_named, ProjectionOptions};
use typederive::model::{parse_schema, schema_to_text};
use typederive::store::{Database, Value};

const SCHEMA: &str = r#"
# A small library-catalogue schema in the typederive definition language.

type Work {
    title: str
    year: int
}
type Book : Work {
    isbn: str
    pages: int
}
type AudioBook : Work {
    narrator: str
    minutes: int
}

accessors title
accessors year
accessors isbn
accessors pages
accessors narrator
accessors minutes

# A Book's reading time estimate needs its page count.
method reading_hours(Book) -> int {
    return get_pages($0) / 40;
}

# Duration of an audiobook, in hours.
method duration_hours = reading_hours(AudioBook) -> int {
    return get_minutes($0) / 60;
}

# A citation only needs title and year.
method cite(Work) -> str {
    return get_title($0) + " (catalogued)";
}
"#;

fn main() {
    let schema = parse_schema(SCHEMA).expect("the embedded schema parses");
    println!("== parsed hierarchy ==\n{}", schema.render_hierarchy());

    let mut db = Database::new(schema);
    let dune = db
        .create_named(
            "Book",
            &[
                ("title", Value::Str("Dune".into())),
                ("year", Value::Int(1965)),
                ("isbn", Value::Str("978-0441013593".into())),
                ("pages", Value::Int(412)),
            ],
        )
        .expect("well-typed book");

    println!(
        "cite(dune) = {}",
        db.call_named("cite", &[Value::Ref(dune)])
            .expect("cite works")
    );
    println!(
        "reading_hours(dune) = {}",
        db.call_named("reading_hours", &[Value::Ref(dune)])
            .expect("applies to books")
    );

    // Derive a "citation card" view: only title and year survive.
    let card = project_named(
        db.schema_mut(),
        "Book",
        &["title", "year"],
        &ProjectionOptions::default(),
    )
    .expect("title and year are available at Book");
    println!("\n== derivation ==\n{}", card.summary(db.schema()));

    // Ask the library to justify the verdict on reading_hours.
    let reading = db
        .schema()
        .method_by_label("reading_hours")
        .expect("defined");
    let why = explain(db.schema(), card.source, &card.projection, reading).expect("explainable");
    println!(
        "why did reading_hours not survive?\n{}",
        why.render(db.schema())
    );

    // The refactored hierarchy round-trips through the DSL…
    let text = schema_to_text(db.schema());
    parse_schema(&text).expect("factored schema re-parses");
    println!(
        "(refactored schema round-trips through the DSL: {} chars)",
        text.len()
    );

    // …and exports to Graphviz for drawing Figure-2-style pictures.
    println!("\n== DOT export ==\n{}", db.schema().render_dot());
}
