//! A realistic HR database: a five-type hierarchy with departments,
//! several algebraic views (projection, selection, join), and the
//! baseline-strategy audit — the workload the paper's introduction
//! motivates (views "for purposes of abstraction or encapsulation").
//!
//! ```sh
//! cargo run --example payroll_views
//! ```

use typederive::baselines::{
    audit_all, DerivationStrategy, LocalEdgeStrategy, PaperStrategy, RootPlacementStrategy,
    StandaloneStrategy,
};
use typederive::model::{BodyBuilder, Expr, MethodKind, Schema, Specializer, ValueType};
use typederive::prelude::*;

/// Person <= {Employee <= {Manager}, Contractor}; Department.
fn hr_schema() -> Schema {
    let mut s = Schema::new();
    let person = s.add_type("Person", &[]).expect("fresh");
    let employee = s.add_type("Employee", &[person]).expect("fresh");
    let manager = s.add_type("Manager", &[employee]).expect("fresh");
    let contractor = s.add_type("Contractor", &[person]).expect("fresh");
    let department = s.add_type("Department", &[]).expect("fresh");

    for (name, ty, owner) in [
        ("ssn", ValueType::INT, person),
        ("full_name", ValueType::STR, person),
        ("birth_year", ValueType::INT, person),
        ("salary", ValueType::FLOAT, employee),
        ("dept_id", ValueType::INT, employee),
        ("bonus_pct", ValueType::FLOAT, manager),
        ("reports", ValueType::INT, manager),
        ("day_rate", ValueType::FLOAT, contractor),
        ("did", ValueType::INT, department),
        ("budget", ValueType::FLOAT, department),
    ] {
        let a = s.add_attr(name, ty, owner).expect("unique");
        s.add_accessors(a).expect("accessors");
    }

    let get_by = s.gf_id("get_birth_year").expect("above");
    let get_salary = s.gf_id("get_salary").expect("above");
    let get_bonus = s.gf_id("get_bonus_pct").expect("above");
    let get_reports = s.gf_id("get_reports").expect("above");

    // age(Person) = 2026 - birth_year
    let age = s.add_gf("age", 1, Some(ValueType::INT)).expect("fresh");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::binop(
        typederive::model::BinOp::Sub,
        Expr::int(2026),
        Expr::call(get_by, vec![Expr::Param(0)]),
    ));
    s.add_method(
        age,
        "age",
        vec![Specializer::Type(person)],
        MethodKind::General(bb.finish()),
        Some(ValueType::INT),
    )
    .expect("fresh");

    // total_comp(Employee) = salary; total_comp(Manager) = salary * (1 + bonus_pct)
    let comp = s
        .add_gf("total_comp", 1, Some(ValueType::FLOAT))
        .expect("fresh");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::call(get_salary, vec![Expr::Param(0)]));
    s.add_method(
        comp,
        "total_comp_employee",
        vec![Specializer::Type(employee)],
        MethodKind::General(bb.finish()),
        Some(ValueType::FLOAT),
    )
    .expect("fresh");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::binop(
        typederive::model::BinOp::Mul,
        Expr::call(get_salary, vec![Expr::Param(0)]),
        Expr::binop(
            typederive::model::BinOp::Add,
            Expr::Lit(typederive::model::Literal::Float(1.0)),
            Expr::call(get_bonus, vec![Expr::Param(0)]),
        ),
    ));
    s.add_method(
        comp,
        "total_comp_manager",
        vec![Specializer::Type(manager)],
        MethodKind::General(bb.finish()),
        Some(ValueType::FLOAT),
    )
    .expect("fresh");

    // span(Manager) = reports  (depends on manager-only state)
    let span = s.add_gf("span", 1, Some(ValueType::INT)).expect("fresh");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::call(get_reports, vec![Expr::Param(0)]));
    s.add_method(
        span,
        "span",
        vec![Specializer::Type(manager)],
        MethodKind::General(bb.finish()),
        Some(ValueType::INT),
    )
    .expect("fresh");

    s.validate().expect("well-formed HR schema");
    s
}

fn main() {
    let mut db = Database::new(hr_schema());

    // ---- populate ---------------------------------------------------------
    for (ssn, name, by, salary, dept, bonus, reports) in [
        (1, "Ada", 1985, 120_000.0, 10, 0.25, 6),
        (2, "Grace", 1975, 150_000.0, 20, 0.30, 11),
    ] {
        db.create_named(
            "Manager",
            &[
                ("ssn", Value::Int(ssn)),
                ("full_name", Value::Str(name.into())),
                ("birth_year", Value::Int(by)),
                ("salary", Value::Float(salary)),
                ("dept_id", Value::Int(dept)),
                ("bonus_pct", Value::Float(bonus)),
                ("reports", Value::Int(reports)),
            ],
        )
        .expect("manager");
    }
    for (ssn, name, by, salary, dept) in [
        (3, "Edsger", 1990, 95_000.0, 10),
        (4, "Barbara", 1995, 88_000.0, 20),
        (5, "Tony", 1998, 70_000.0, 10),
    ] {
        db.create_named(
            "Employee",
            &[
                ("ssn", Value::Int(ssn)),
                ("full_name", Value::Str(name.into())),
                ("birth_year", Value::Int(by)),
                ("salary", Value::Float(salary)),
                ("dept_id", Value::Int(dept)),
            ],
        )
        .expect("employee");
    }
    for (d, b) in [(10, 2_000_000.0), (20, 3_500_000.0)] {
        db.create_named(
            "Department",
            &[("did", Value::Int(d)), ("budget", Value::Float(b))],
        )
        .expect("department");
    }

    // ---- view 1: a privacy-preserving directory (projection) -------------
    // HR wants to hand the directory service name+age material without
    // exposing compensation.
    let directory = project_named(
        db.schema_mut(),
        "Employee",
        &["full_name", "birth_year", "dept_id"],
        &ProjectionOptions::default(),
    )
    .expect("directory view");
    println!("== directory view ==\n{}", directory.summary(db.schema()));

    let dir = MaterializedView::materialize(&mut db, &directory).expect("materialize");
    for &(_, v) in &dir.pairs {
        let name = db
            .call_named("get_full_name", &[Value::Ref(v)])
            .expect("projected");
        let age = db
            .call_named("age", &[Value::Ref(v)])
            .expect("age survives");
        println!("  {name} (age {age})");
        assert!(db.call_named("total_comp", &[Value::Ref(v)]).is_err());
    }
    println!("  total_comp correctly rejected on directory entries\n");

    // ---- view 2: payroll slice (projection keeps comp methods) -----------
    let payroll = project_named(
        db.schema_mut(),
        "Manager",
        &["ssn", "salary", "bonus_pct"],
        &ProjectionOptions::default(),
    )
    .expect("payroll view");
    println!("== payroll view ==\n{}", payroll.summary(db.schema()));
    let pay = MaterializedView::materialize(&mut db, &payroll).expect("materialize");
    for &(_, v) in &pay.pairs {
        let ssn = db
            .call_named("get_ssn", &[Value::Ref(v)])
            .expect("projected");
        let comp = db
            .call_named("total_comp", &[Value::Ref(v)])
            .expect("both inputs projected");
        println!("  ssn {ssn}: total comp {comp}");
        // span needs `reports`, which was projected away.
        assert!(db.call_named("span", &[Value::Ref(v)]).is_err());
    }
    println!();

    // ---- view 3: selection over the original type -------------------------
    let salary_attr = db.schema().attr_id("salary").expect("exists");
    let employee = db.schema().type_id("Employee").expect("exists");
    let well_paid = select(
        db.schema_mut(),
        employee,
        "WellPaid",
        Predicate::cmp(salary_attr, CmpOp::Ge, Value::Float(100_000.0)),
    )
    .expect("selection view");
    let rich = well_paid.filter(&db).expect("filter");
    println!(
        "== WellPaid (σ salary ≥ 100k) has {} members ==",
        rich.len()
    );
    for o in rich {
        let name = db
            .call_named("get_full_name", &[Value::Ref(o)])
            .expect("name");
        println!("  {name}");
    }
    println!();

    // ---- view 4: employee ⋈ department ------------------------------------
    let dept_id = db.schema().attr_id("dept_id").expect("exists");
    let did = db.schema().attr_id("did").expect("exists");
    let department = db.schema().type_id("Department").expect("exists");
    let emp_dept = join(
        db.schema_mut(),
        employee,
        department,
        "EmployeeWithDept",
        (dept_id, did),
    )
    .expect("join view");
    let triples = emp_dept.materialize(&mut db).expect("materialize join");
    println!(
        "== EmployeeWithDept (⋈ on dept) has {} rows ==",
        triples.len()
    );
    for (_, _, v) in &triples {
        let name = db
            .call_named("get_full_name", &[Value::Ref(*v)])
            .expect("left side");
        let budget = db
            .call_named("get_budget", &[Value::Ref(*v)])
            .expect("right side");
        println!("  {name} works in a department with budget {budget}");
    }
    println!();

    // ---- how the related-work strategies would have fared -----------------
    let pristine = Database::new(hr_schema());
    let source = pristine.schema().type_id("Employee").expect("exists");
    let projection = ["full_name", "birth_year", "dept_id"]
        .iter()
        .map(|n| pristine.schema().attr_id(n).expect("exists"))
        .collect();
    let strategies: Vec<&dyn DerivationStrategy> = vec![
        &PaperStrategy,
        &StandaloneStrategy,
        &RootPlacementStrategy,
        &LocalEdgeStrategy,
    ];
    println!("== baseline audit (directory view workload) ==");
    for result in audit_all(&strategies, pristine.schema(), source, &projection) {
        println!("  {}", result.row());
    }
}
