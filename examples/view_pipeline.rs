//! Views over views: the §7 open problem, measured.
//!
//! Stacks projections over the Figure 3 hierarchy, counts the empty
//! surrogates each layer adds, then runs the surrogate-minimization pass
//! and reports how many it reclaims — the ablation behind experiment
//! COMP in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --example view_pipeline
//! ```

use std::collections::BTreeSet;
use typederive::algebra::{count_empty_surrogates, minimize_pipeline_surrogates, Pipeline};
use typederive::derive::ProjectionOptions;
use typederive::model::TypeId;
use typederive::workload::figures;

fn main() {
    let mut s = figures::fig3();
    let a = s.type_id("A").expect("figure 3 type");

    println!("layer | live types | empty surrogates | view state");
    println!("------+------------+------------------+-----------");
    let mut protected: BTreeSet<TypeId> = BTreeSet::new();
    let layers: [&[&str]; 3] = [&["a2", "e2", "h2"], &["e2", "h2"], &["h2"]];
    let mut source = a;
    for (i, attrs) in layers.iter().enumerate() {
        let outcomes = Pipeline::new()
            .project(attrs)
            .apply(&mut s, source, &ProjectionOptions::default())
            .expect("stacked projection");
        let view = outcomes.last().expect("one step").result_type();
        protected.insert(view);
        source = view;
        let state: Vec<&str> = s
            .cumulative_attrs(view)
            .into_iter()
            .map(|x| s.attr_name(x))
            .collect::<Vec<_>>();
        println!(
            "  {}   |    {:3}     |       {:3}        | {{{}}}",
            i + 1,
            s.live_type_ids().count(),
            count_empty_surrogates(&s),
            state.join(", ")
        );
    }

    println!(
        "\nhierarchy after three stacked views:\n{}",
        s.render_hierarchy()
    );

    let (before, after, removed) =
        minimize_pipeline_surrogates(&mut s, &protected).expect("minimization");
    println!(
        "minimization: {before} empty surrogates -> {after} (removed {removed}, views protected)"
    );
    println!("\nhierarchy after minimization:\n{}", s.render_hierarchy());

    s.validate().expect("still well-formed");
    let h2 = s.attr_id("h2").expect("exists");
    let last = *protected.iter().max().expect("non-empty");
    assert_eq!(s.cumulative_attrs(last), [h2].into_iter().collect());
    println!("final view still exposes exactly {{h2}} ✓");
}
